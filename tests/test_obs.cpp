// Observability suite: the lock-free TraceRecorder ring (ordering,
// drop-oldest overflow, disabled no-op, concurrent writers — the tsan_gate
// runs this binary under -fsanitize=thread), the metrics registry, the
// Chrome-trace/CSV exporters (golden strings + file round-trip), and the
// session/runner integration (frame-lifecycle chain, FBCC J events,
// per-run trace paths).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "poi360/core/config.h"
#include "poi360/core/session.h"
#include "poi360/obs/metrics_registry.h"
#include "poi360/obs/trace.h"
#include "poi360/obs/trace_export.h"
#include "poi360/runner/batch_runner.h"
#include "poi360/runner/experiment_spec.h"
#include "poi360/runner/result_io.h"

using namespace poi360;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// gtest's TempDir() is shared (/tmp); the sanitizer gates run this binary
// concurrently with the outer suite, so every scratch path must be
// per-process unique or the two runs race on the same files.
std::string scratch_path(const std::string& leaf) {
  static const std::string dir = [] {
    std::string d = testing::TempDir() + "obs_scratch_" +
                    std::to_string(::getpid());
    std::filesystem::create_directories(d);
    return d + "/";
  }();
  return dir + leaf;
}

}  // namespace

// ------------------------------------------------------------ recorder --

TEST(TraceRecorder, SpanNestingAndOrdering) {
  obs::TraceRecorder rec;
  rec.span_begin(100, "frame", "encode", 1, {{"bytes", 5000.0}});
  rec.span_begin(110, "frame", "pace", 1, {{"fragments", 4.0}});
  rec.instant(115, "control", "fbcc.J", {{"J", 1.0}});
  rec.span_end(130, "frame", "pace", 1);
  rec.span_end(140, "frame", "encode", 1);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  // Admission order is preserved, seq strictly increasing.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
  }
  EXPECT_EQ(events[0].phase, obs::Phase::kSpanBegin);
  EXPECT_STREQ(events[0].name, "encode");
  EXPECT_EQ(events[0].id, 1);
  ASSERT_EQ(events[0].n_args, 1);
  EXPECT_STREQ(events[0].args[0].key, "bytes");
  EXPECT_EQ(events[0].args[0].value, 5000.0);
  EXPECT_EQ(events[2].phase, obs::Phase::kInstant);
  EXPECT_EQ(events[2].id, -1);
  // The inner span closes before the outer one (nesting preserved).
  EXPECT_EQ(events[3].phase, obs::Phase::kSpanEnd);
  EXPECT_STREQ(events[3].name, "pace");
  EXPECT_EQ(events[4].phase, obs::Phase::kSpanEnd);
  EXPECT_STREQ(events[4].name, "encode");
}

TEST(TraceRecorder, OverflowDropsOldest) {
  obs::TraceRecorder rec(obs::TraceConfig{.enabled = true, .capacity = 8});
  for (int i = 0; i < 20; ++i) {
    rec.instant(i, "cat", "tick", {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained first: sequences 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].args[0].value, static_cast<double>(12 + i));
  }
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  obs::TraceRecorder rec(obs::TraceConfig{.enabled = false, .capacity = 8});
  rec.span_begin(1, "frame", "encode", 1);
  rec.span_end(2, "frame", "encode", 1);
  rec.instant(3, "control", "x");
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, ArgsClampToMax) {
  obs::TraceRecorder rec;
  rec.instant(1, "cat", "x",
              {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}, {"e", 5.0}});
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].n_args, obs::TraceEvent::kMaxArgs);
  EXPECT_STREQ(events[0].args[3].key, "d");
}

// The ring's concurrency contract under contention: every admission is
// counted, overflow is exact, and after quiescence every retained slot
// holds a fully published event. The tsan_gate runs this under TSan.
TEST(TraceRecorder, ConcurrentWritersWithOverflow) {
  constexpr std::size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr int kEach = 20000;
  obs::TraceRecorder rec(
      obs::TraceConfig{.enabled = true, .capacity = kCapacity});
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < kEach; ++i) {
        rec.span_begin(i, "cat", "work", t * kEach + i,
                       {{"i", static_cast<double>(i)}});
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kThreads) * kEach);
  EXPECT_EQ(rec.dropped(),
            static_cast<std::uint64_t>(kThreads) * kEach - kCapacity);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Payloads are internally consistent — no torn writes.
    EXPECT_STREQ(events[i].category, "cat");
    EXPECT_STREQ(events[i].name, "work");
    ASSERT_EQ(events[i].n_args, 1);
    EXPECT_STREQ(events[i].args[0].key, "i");
    if (i > 0) {
      EXPECT_GT(events[i].seq, prev_seq);
    }
    prev_seq = events[i].seq;
  }
}

// ------------------------------------------------------------ registry --

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("frames").inc();
  reg.counter("frames").inc(4);
  reg.gauge("rate_bps").set(3.5e6);
  reg.histogram("delay_ms").observe(10.0);
  reg.histogram("delay_ms").observe(30.0);

  EXPECT_EQ(reg.counter_value("frames"), 5);
  EXPECT_EQ(reg.gauge_value("rate_bps"), 3.5e6);
  const obs::Histogram* h = reg.find_histogram("delay_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2);
  EXPECT_EQ(h->min(), 10.0);
  EXPECT_EQ(h->max(), 30.0);
  EXPECT_EQ(h->mean(), 20.0);

  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.counter_value("absent"), 0);
  EXPECT_EQ(reg.gauge_value("absent"), 0.0);
}

TEST(MetricsRegistry, SnapshotSortedAndExpanded) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").inc();
  reg.gauge("a.first").set(1.0);
  reg.histogram("m.mid").observe(2.0);
  const auto entries = reg.snapshot();
  ASSERT_EQ(entries.size(), 6u);  // 1 counter + 1 gauge + 4 histogram rows
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
  EXPECT_EQ(entries.front().name, "a.first");
  EXPECT_EQ(entries.back().name, "z.last");
}

TEST(MetricsRegistry, MergeSemantics) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("n").set(3);
  b.counter("n").set(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h").observe(1.0);
  b.histogram("h").observe(5.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("n"), 7);      // counters add
  EXPECT_EQ(a.gauge_value("g"), 9.0);      // gauges: last writer
  const obs::Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2);                // histograms merge moments
  EXPECT_EQ(h->min(), 1.0);
  EXPECT_EQ(h->max(), 5.0);
}

// ----------------------------------------------------------- exporters --

namespace {

// Shared fixture events for the golden-string tests: one span pair, one
// instant, recorded through a real recorder so seq values are genuine.
std::vector<obs::TraceEvent> golden_events() {
  obs::TraceRecorder rec;
  rec.span_begin(1000, "frame", "pace", 7, {{"fragments", 3.0}});
  rec.instant(1500, "control", "fbcc.J", {{"J", 1.0}, {"B_bytes", 12000.5}});
  rec.span_end(2000, "frame", "pace", 7);
  return rec.snapshot();
}

}  // namespace

TEST(TraceExport, ChromeTraceGolden) {
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":2},"
      "\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"test\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"frame\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"control\"}},\n"
      "{\"ph\":\"b\",\"pid\":1,\"tid\":1,\"ts\":1000,\"id\":\"7\","
      "\"cat\":\"frame\",\"name\":\"pace\",\"args\":{\"fragments\":3}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":2,\"ts\":1500,"
      "\"cat\":\"control\",\"name\":\"fbcc.J\","
      "\"args\":{\"J\":1,\"B_bytes\":12000.5}},\n"
      "{\"ph\":\"e\",\"pid\":1,\"tid\":1,\"ts\":2000,\"id\":\"7\","
      "\"cat\":\"frame\",\"name\":\"pace\",\"args\":{}}\n"
      "]}\n";
  EXPECT_EQ(obs::to_chrome_trace(golden_events(), "test", 2), expected);
}

TEST(TraceExport, CsvGolden) {
  const std::string expected =
      "seq,time_us,phase,category,name,id,args\n"
      "0,1000,B,frame,pace,7,fragments=3\n"
      "1,1500,I,control,fbcc.J,-1,J=1;B_bytes=12000.5\n"
      "2,2000,E,frame,pace,7,\n";
  EXPECT_EQ(obs::to_trace_csv(golden_events()), expected);
}

TEST(TraceExport, FileRoundTrip) {
  obs::TraceRecorder rec;
  rec.span_begin(10, "frame", "encode", 1, {{"bytes", 1234.0}});
  rec.span_end(20, "frame", "encode", 1);

  const std::string json_path = scratch_path("obs_roundtrip.json");
  const std::string csv_path = scratch_path("obs_roundtrip.csv");
  obs::write_chrome_trace(json_path, rec, "roundtrip");
  obs::write_trace_csv(csv_path, rec);

  EXPECT_EQ(read_file(json_path), obs::to_chrome_trace(rec, "roundtrip"));
  EXPECT_EQ(read_file(csv_path), obs::to_trace_csv(rec));

  // runner::write_trace dispatches on the extension.
  const std::string via_runner_csv = scratch_path("obs_runner.csv");
  const std::string via_runner_json = scratch_path("obs_runner.json");
  runner::write_trace(via_runner_csv, rec, "roundtrip");
  runner::write_trace(via_runner_json, rec, "roundtrip");
  EXPECT_EQ(read_file(via_runner_csv), obs::to_trace_csv(rec));
  EXPECT_EQ(read_file(via_runner_json), obs::to_chrome_trace(rec, "roundtrip"));
}

// ------------------------------------------------- session integration --

namespace {

// Stage key for the frame-lifecycle chain assertions below.
std::string stage_key(const obs::TraceEvent& e) {
  const char* phase = e.phase == obs::Phase::kSpanBegin ? "B"
                      : e.phase == obs::Phase::kSpanEnd ? "E"
                                                        : "I";
  return std::string(e.name) + ":" + phase;
}

}  // namespace

TEST(SessionTrace, FrameLifecycleChainAndFbccDecisions) {
  core::SessionConfig config = core::presets::cellular_static();
  config.compression = core::CompressionScheme::kPoi360;
  config.rate_control = core::RateControl::kFbcc;
  config.duration = sec(12);
  // Overdrive the start rate well past the ~5.5 Mbps grant saturation so
  // the firmware buffer inflates and the congestion detector flips J=1.
  config.initial_rate = mbps(12);
  config.seed = 3;
  config.trace.enabled = true;

  core::Session session(config);
  session.run();
  ASSERT_NE(session.trace(), nullptr);
  const auto events = session.trace()->snapshot();
  ASSERT_FALSE(events.empty());

  // At least one frame id must carry the complete lifecycle chain:
  // capture -> encode -> pace -> phy -> assemble -> display.
  const std::set<std::string> chain = {
      "capture:I", "encode:B", "encode:E", "pace:B",     "pace:E",
      "phy:B",     "phy:E",    "assemble:B", "assemble:E", "display:I"};
  std::map<std::int64_t, std::set<std::string>> stages;
  for (const obs::TraceEvent& e : events) {
    if (std::string_view(e.category) == "frame" && e.id >= 0) {
      stages[e.id].insert(stage_key(e));
    }
  }
  bool complete_chain = false;
  for (const auto& [id, got] : stages) {
    bool all = true;
    for (const std::string& want : chain) {
      if (!got.count(want)) {
        all = false;
        break;
      }
    }
    if (all) {
      complete_chain = true;
      break;
    }
  }
  EXPECT_TRUE(complete_chain)
      << "no frame id carries the full capture..display span chain";

  // The control track must record at least one congestion onset with the
  // decision inputs the paper's Eq. 3-5 consume.
  bool j_one_with_inputs = false;
  for (const obs::TraceEvent& e : events) {
    if (std::string_view(e.name) != "fbcc.J") continue;
    std::map<std::string, double> args;
    for (int i = 0; i < e.n_args; ++i) args[e.args[i].key] = e.args[i].value;
    if (args.count("J") && args["J"] == 1.0 && args.count("B_bytes") &&
        args.count("gamma_bytes") && args.count("rphy_bps")) {
      j_one_with_inputs = true;
      break;
    }
  }
  EXPECT_TRUE(j_one_with_inputs)
      << "no J=1 fbcc.J event with B/gamma/R_phy inputs recorded";
}

TEST(SessionTrace, DisabledByDefault) {
  core::SessionConfig config = core::presets::wireline();
  config.duration = sec(1);
  core::Session session(config);
  session.run();
  EXPECT_EQ(session.trace(), nullptr);
}

// --------------------------------------------------------------- runner --

TEST(RunnerTrace, FileNamesAreSanitizedAndUnique) {
  runner::RunSpec a;
  a.run_id = 0;
  a.experiment = "fig16 fbcc/gcc";
  a.params = {{"rc", "FBCC"}, {"net", "cellular: static"}};
  a.repeat = 0;
  a.seed = 1000;
  runner::RunSpec b = a;
  b.run_id = 1;
  b.repeat = 1;
  b.seed = 8919;

  const std::string na = runner::trace_file_name(a);
  const std::string nb = runner::trace_file_name(b);
  EXPECT_NE(na, nb);
  EXPECT_EQ(na.find('/'), std::string::npos);
  EXPECT_EQ(na.find(':'), std::string::npos);
  EXPECT_EQ(na.find(' '), std::string::npos);
  EXPECT_NE(na.find("rc-FBCC"), std::string::npos);
  EXPECT_NE(na.find("s1000"), std::string::npos);
  EXPECT_TRUE(na.size() > 11 &&
              na.substr(na.size() - 11) == ".trace.json");
}

TEST(RunnerTrace, MungedLabelsCannotCollideOrEscape) {
  runner::RunSpec base;
  base.run_id = 0;
  base.experiment = "exp";
  base.repeat = 0;
  base.seed = 1;

  // Labels that sanitize to the same replacement text must still produce
  // distinct filenames (the munged component carries a content hash).
  runner::RunSpec slash = base;
  slash.params = {{"axis", "a/b"}};
  runner::RunSpec space = base;
  space.params = {{"axis", "a b"}};
  runner::RunSpec dash = base;
  dash.params = {{"axis", "a-b"}};
  const std::string n_slash = runner::trace_file_name(slash);
  const std::string n_space = runner::trace_file_name(space);
  const std::string n_dash = runner::trace_file_name(dash);
  EXPECT_NE(n_slash, n_space);
  EXPECT_NE(n_slash, n_dash);
  EXPECT_NE(n_space, n_dash);

  // A hostile label cannot introduce path separators or shell metachars.
  runner::RunSpec evil = base;
  evil.params = {{"axis", "../../etc/passwd; rm -rf $(HOME) `x` &"}};
  const std::string n_evil = runner::trace_file_name(evil);
  for (char c : {'/', ';', '$', '`', '&', '(', ')', ' '}) {
    EXPECT_EQ(n_evil.find(c), std::string::npos) << "found '" << c << "'";
  }

  // Clean labels keep their historical byte-exact names (no hash suffix).
  runner::RunSpec clean = base;
  clean.params = {{"rc", "FBCC"}};
  EXPECT_EQ(runner::trace_file_name(clean),
            "exp__rc-FBCC__r0_s1_id0.trace.json");

  // Same label munged identically stays deterministic across calls.
  EXPECT_EQ(n_slash, runner::trace_file_name(slash));
}

TEST(RunnerTrace, ExpandDerivesUniquePaths) {
  core::SessionConfig base = core::presets::wireline();
  base.duration = sec(1);
  runner::ExperimentSpec spec(base);
  spec.name("obs_paths")
      .axis("x", {{"one", nullptr}, {"two", nullptr}})
      .repeats(2)
      .trace_dir("some/dir");
  const auto runs = spec.expand();
  ASSERT_EQ(runs.size(), 4u);
  std::set<std::string> paths;
  for (const auto& run : runs) {
    EXPECT_EQ(run.trace_path.rfind("some/dir/", 0), 0u);
    paths.insert(run.trace_path);
  }
  EXPECT_EQ(paths.size(), runs.size());  // no collisions, ever
}

TEST(RunnerTrace, BatchWritesPerRunTraces) {
  const std::string dir = scratch_path("obs_batch_traces");
  std::filesystem::create_directories(dir);

  core::SessionConfig base = core::presets::wireline();
  base.duration = sec(2);
  runner::ExperimentSpec spec(base);
  spec.name("obs_batch")
      .axis("x", {{"one", nullptr}, {"two", nullptr}})
      .repeats(1)
      .trace_dir(dir);

  runner::BatchRunner::Options options;
  options.jobs = 2;  // parallel writers must not collide on paths
  const runner::BatchResult batch = runner::BatchRunner(options).run(spec);
  ASSERT_EQ(batch.runs.size(), 2u);
  for (const runner::RunResult& run : batch.runs) {
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_FALSE(run.spec.trace_path.empty());
    const std::string body = read_file(run.spec.trace_path);
    EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos)
        << run.spec.trace_path;
    EXPECT_NE(body.find("dropped_events"), std::string::npos);
    // The wireline session still produces the frame track.
    EXPECT_NE(body.find("\"name\":\"display\""), std::string::npos);
  }
}
