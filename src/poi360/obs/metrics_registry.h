#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

// Named-metric registry: counters, gauges, moment histograms and fixed-
// boundary bucket histograms that subsystems register into instead of
// growing ad-hoc accumulator structs. Registration returns a stable
// reference (std::map nodes never move), so hot paths increment through a
// cached pointer and never re-hash the name.
//
// Metrics come in two shapes:
//   - flat:    counter("serve.arrivals") — the historical form, one series
//              per name;
//   - labeled: counter("fleet.freeze_ratio", {{"cell","3"},{"rung","fbcc"}})
//              — one *family* per name holding one series per label set, the
//              per-entity (per-UE / per-cell) time series the fleet and soak
//              drivers expose for live scraping.
// Label sets are canonicalized (sorted by label name), so registration order
// never creates duplicate series.

namespace poi360::obs {

/// One metric's label set: (label name, label value) pairs. Order does not
/// matter — the registry canonicalizes by label name.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key of a label set (sorted by label name, '\x1f'
/// separated). The empty label set maps to the empty key, which is the flat
/// series of the family.
std::string canonical_label_key(const Labels& labels);

class Counter {
 public:
  void inc(std::int64_t n = 1) { value_ += n; }
  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Moment histogram: count/sum/min/max only. O(1) ingestion, exact merges,
/// no bucket-boundary tuning; enough for the delay/size distributions the
/// result tables report.
class Histogram {
 public:
  void observe(double v) {
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  void merge_from(const Histogram& other) {
    if (other.count_ == 0) return;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary bucket histogram (the Prometheus `le` kind): per-bucket
/// counts over sorted upper bounds plus an implicit terminal +Inf bucket,
/// so freeze/mismatch/delay distributions are scrapeable as real
/// quantile-capable histograms. Boundaries are fixed at registration;
/// merge_from requires identical boundaries.
class BucketHistogram {
 public:
  /// Degenerate histogram: the +Inf bucket only (count/sum still exact).
  BucketHistogram() : counts_(1, 0) {}
  /// `upper_bounds` are sorted ascending and deduplicated; +Inf is implicit
  /// and must not be passed.
  explicit BucketHistogram(std::vector<double> upper_bounds);

  void observe(double v);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Finite upper bounds; the terminal +Inf bucket is implicit.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the last
  /// entry being the +Inf bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }
  /// Cumulative count through bucket `i` (the `le` sample value).
  std::int64_t cumulative(std::size_t i) const;

  /// Exact merge; throws std::invalid_argument on boundary mismatch.
  void merge_from(const BucketHistogram& other);

  /// Stock boundary sets.
  static std::vector<double> latency_ms_bounds();  ///< 10..2000 ms
  static std::vector<double> ratio_bounds();       ///< 0.01..0.75

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1 (+Inf last)
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  // -- flat series (historical form) --------------------------------------
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  // -- labeled families ---------------------------------------------------
  /// Registers (or finds) the series of `name` with the given label set and
  /// returns a stable reference. An empty label set is the flat series.
  Counter& counter(const std::string& name, const Labels& labels);
  Gauge& gauge(const std::string& name, const Labels& labels);
  Histogram& histogram(const std::string& name, const Labels& labels);

  const Counter* find_counter(const std::string& name,
                              const Labels& labels) const;
  const Gauge* find_gauge(const std::string& name, const Labels& labels) const;
  const Histogram* find_histogram(const std::string& name,
                                  const Labels& labels) const;

  // -- bucket histograms --------------------------------------------------
  /// Registers (or finds) a bucket histogram. The boundaries apply on first
  /// registration; later calls for the same series ignore `upper_bounds`.
  BucketHistogram& bucket_histogram(const std::string& name,
                                    const std::vector<double>& upper_bounds);
  BucketHistogram& bucket_histogram(const std::string& name,
                                    const std::vector<double>& upper_bounds,
                                    const Labels& labels);
  const BucketHistogram* find_bucket_histogram(const std::string& name) const;
  const BucketHistogram* find_bucket_histogram(const std::string& name,
                                               const Labels& labels) const;

  /// HELP text emitted for the family in the Prometheus exposition.
  void set_help(const std::string& name, std::string help) {
    help_[name] = std::move(help);
  }

  /// Counter value, or 0 when the counter was never registered — the reader
  /// used to reassemble the robustness structs.
  std::int64_t counter_value(const std::string& name) const {
    const Counter* c = find_counter(name);
    return c ? c->value() : 0;
  }
  std::int64_t counter_value(const std::string& name,
                             const Labels& labels) const {
    const Counter* c = find_counter(name, labels);
    return c ? c->value() : 0;
  }
  double gauge_value(const std::string& name) const {
    const Gauge* g = find_gauge(name);
    return g ? g->value() : 0.0;
  }
  double gauge_value(const std::string& name, const Labels& labels) const {
    const Gauge* g = find_gauge(name, labels);
    return g ? g->value() : 0.0;
  }

  struct Entry {
    /// Flat name, or `name{k="v",...}` for labeled series.
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "histogram" | "buckets"
    double value;
  };
  /// Flat, name-sorted view; moment histograms expand to
  /// .count/.mean/.min/.max, bucket histograms to .count/.sum plus one
  /// cumulative .le_<bound> row per bucket.
  std::vector<Entry> snapshot() const;

  /// Counters add, gauges take the other side's value (last writer),
  /// histograms merge moments, bucket histograms merge counts (boundaries
  /// must match). Label-aware: labeled series merge by (name, label set).
  void merge_from(const MetricsRegistry& other);

  /// Idempotent publish: every series `other` carries *replaces* the same
  /// series here (counters/gauges set, histograms copy). Re-publishing the
  /// same source is a no-op — the fleet cells use this so concurrent
  /// per-cell publishes into one master registry never double-count.
  void overwrite_from(const MetricsRegistry& other);

  /// Prometheus text exposition (v0.0.4) of the whole registry: counters
  /// and gauges as their native types, moment histograms as a summary
  /// (`_count`/`_sum`) plus `_min`/`_max` gauges, bucket histograms as the
  /// native histogram type (`_bucket{le=...}` cumulative, `+Inf` terminal,
  /// `_sum`/`_count`). Metric names are `<prefix>_<name>` with every
  /// character outside [a-zA-Z0-9_:] mapped to '_'; label names are
  /// sanitized to [a-zA-Z0-9_], label values escape `\`, `"` and newline;
  /// families carry one `# HELP` (when set via set_help) and one `# TYPE`
  /// line each. Deterministic: families and series are name-ordered.
  std::string prometheus_text(const std::string& prefix = "poi360") const;

 private:
  template <typename M>
  struct Series {
    Labels labels;  ///< canonical (name-sorted) order
    M metric{};
  };
  /// name -> canonical label key -> series. Inner map nodes are stable, so
  /// references returned by the registration calls never dangle.
  template <typename M>
  using FamilyMap = std::map<std::string, std::map<std::string, Series<M>>>;

  template <typename M>
  static M& labeled(FamilyMap<M>& families, const std::string& name,
                    const Labels& labels);
  template <typename M>
  static const M* find_labeled(const FamilyMap<M>& families,
                               const std::string& name, const Labels& labels);

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, BucketHistogram> buckets_;
  FamilyMap<Counter> labeled_counters_;
  FamilyMap<Gauge> labeled_gauges_;
  FamilyMap<Histogram> labeled_histograms_;
  FamilyMap<BucketHistogram> labeled_buckets_;
  std::map<std::string, std::string> help_;
};

}  // namespace poi360::obs
