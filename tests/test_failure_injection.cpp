// Failure-injection tests: the session must degrade gracefully — never
// deadlock, crash, or corrupt its accounting — under hostile network
// conditions well outside the calibrated operating range.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "poi360/core/config.h"
#include "poi360/core/session.h"
#include "poi360/lte/trace.h"

namespace poi360::core {
namespace {

void expect_sane(const metrics::SessionMetrics& m) {
  std::set<std::int64_t> ids;
  for (const auto& f : m.frames()) {
    EXPECT_TRUE(ids.insert(f.frame_id).second);
    EXPECT_GT(f.delay, 0);
    EXPECT_GE(f.roi_level, 1.0);
  }
  EXPECT_GE(m.skipped_frames(), 0);
}

TEST(FailureInjection, HeavyMediaLossRecoveredByNack) {
  SessionConfig config = presets::cellular_static();
  config.core_loss = 0.05;  // 5% of media packets dropped in the core
  config.duration = sec(20);
  config.seed = 51;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  // NACK recovery keeps the stream alive; most frames still display.
  EXPECT_GT(m.displayed_frames(), 500);
  expect_sane(m);
}

TEST(FailureInjection, LossyFeedbackChannel) {
  SessionConfig config = presets::cellular_static();
  config.feedback_loss = 0.30;  // 30% of ROI/congestion feedback lost
  config.duration = sec(20);
  config.seed = 52;
  Session session(config);
  session.run();
  // Stale ROI knowledge hurts quality but must not stall the pipeline.
  EXPECT_GT(session.metrics().displayed_frames(), 500);
  expect_sane(session.metrics());
}

TEST(FailureInjection, TotalOutagePeriodsViaTrace) {
  // Capacity hard-zero for two seconds out of every ten.
  auto trace = std::make_shared<lte::CapacityTrace>();
  trace->add(0, mbps(4));
  trace->add(sec(6), 0.0);
  trace->add(sec(8), mbps(4));
  trace->add(sec(10) - msec(1), mbps(4));

  SessionConfig config = presets::cellular_static();
  config.channel.capacity_trace = trace;
  config.duration = sec(40);
  config.seed = 53;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  // Frames freeze and the sender skips under backlog, but the session
  // recovers every cycle and keeps its accounting consistent.
  EXPECT_GT(m.displayed_frames(), 300);
  EXPECT_GT(m.freeze_ratio(), 0.05);
  expect_sane(m);
}

TEST(FailureInjection, NearZeroCapacityNeverDeadlocks) {
  auto trace = std::make_shared<lte::CapacityTrace>();
  trace->add(0, kbps(120));
  trace->add(sec(5) - msec(1), kbps(120));

  SessionConfig config = presets::cellular_static();
  config.channel.capacity_trace = trace;
  config.duration = sec(20);
  config.seed = 54;
  Session session(config);
  session.run();  // must terminate
  const auto& m = session.metrics();
  // Starvation: nearly everything skips or freezes, but nothing crashes.
  EXPECT_GT(m.displayed_frames() + m.skipped_frames(), 300);
  expect_sane(m);
}

TEST(FailureInjection, ExtremeJitterKeepsOrdering) {
  SessionConfig config = presets::cellular_static();
  config.core_jitter = msec(60);
  config.feedback_jitter = msec(60);
  config.duration = sec(15);
  config.seed = 55;
  Session session(config);
  session.run();
  EXPECT_GT(session.metrics().displayed_frames(), 400);
  expect_sane(session.metrics());
}

TEST(FailureInjection, TinyFirmwareBufferDropsButSurvives) {
  SessionConfig config = presets::cellular_static();
  config.uplink.buffer_limit_bytes = 8'000;  // absurdly small modem buffer
  config.duration = sec(15);
  config.seed = 56;
  Session session(config);
  session.run();
  // Drop-tail at the modem forces NACK recovery; stream survives.
  EXPECT_GT(session.metrics().displayed_frames(), 200);
  expect_sane(session.metrics());
}

TEST(FailureInjection, HighBlerChannel) {
  SessionConfig config = presets::cellular_static();
  config.uplink.bler = 0.25;
  config.duration = sec(15);
  config.seed = 57;
  Session session(config);
  session.run();
  EXPECT_GT(session.metrics().displayed_frames(), 300);
  expect_sane(session.metrics());
}

TEST(FailureInjection, ViewerSpinningConstantly) {
  SessionConfig config = presets::cellular_static();
  config.head_motion.pursuit_prob = 1.0;
  config.head_motion.pursuit_speed_mean_deg_s = 90.0;
  config.head_motion.mean_fixation_s = 0.25;
  config.duration = sec(15);
  config.seed = 58;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  EXPECT_GT(m.displayed_frames(), 400);
  // Constant motion means constant mismatch pressure: quality suffers but
  // the adaptive controller keeps the stream fair-or-better on average.
  EXPECT_GT(m.mean_roi_psnr(), 20.0);
  expect_sane(m);
}

}  // namespace
}  // namespace poi360::core
