#pragma once

#include <optional>

#include "poi360/common/time.h"
#include "poi360/rtp/rtcp.h"

namespace poi360::rtp {

/// Adaptive playout (jitter) buffer for the viewer side.
///
/// A real-time video receiver cannot display frames the instant they
/// complete: arrival times jitter, and the display must be smooth and
/// monotone. This scheduler maintains a target playout delay of
/// `jitter_multiplier` x the measured interarrival jitter (clamped to
/// [min_delay, max_delay]) and assigns each frame the later of
/// (completion, previous display + a minimum spacing, capture + target).
///
/// Off by default in the session (`SessionConfig.use_adaptive_playout`):
/// the paper measures raw frame delay with a fixed render pipeline, and the
/// headline calibration keeps that model. Enable it to study smoothness/
/// latency trade-offs.
class JitterBuffer {
 public:
  struct Config {
    SimDuration min_delay = msec(10);
    SimDuration max_delay = msec(400);
    double jitter_multiplier = 3.0;
    /// Display spacing floor (frames cannot render faster than this).
    SimDuration min_spacing = msec(5);
  };

  JitterBuffer();
  explicit JitterBuffer(Config config);

  /// Registers a completed frame (capture timestamp + completion time) and
  /// returns the time at which it should be displayed.
  SimTime schedule(SimTime capture_time, SimTime completion);

  /// Current playout-delay target.
  SimDuration target_delay() const;

  SimDuration measured_jitter() const { return jitter_.jitter(); }

 private:
  Config config_;
  JitterEstimator jitter_;
  std::optional<SimTime> last_display_;
  std::optional<SimDuration> base_delay_;  // min observed network delay
};

}  // namespace poi360::rtp
