#include "poi360/search/chaos_spec.h"

#include "poi360/lte/diag_fault_json.h"
#include "poi360/net/chaos_json.h"

namespace poi360::search {

using common::Json;

Json TrafficSpec::to_json() const {
  Json j = Json::object();
  j.set("rss_dbm", rss_dbm);
  j.set("mean_cell_load", mean_cell_load);
  j.set("load_std", load_std);
  j.set("speed_mph", speed_mph);
  return j;
}

TrafficSpec TrafficSpec::from_json(const Json& j) {
  TrafficSpec t;
  t.rss_dbm = j.get_double("rss_dbm", t.rss_dbm);
  t.mean_cell_load = j.get_double("mean_cell_load", t.mean_cell_load);
  t.load_std = j.get_double("load_std", t.load_std);
  t.speed_mph = j.get_double("speed_mph", t.speed_mph);
  return t;
}

Json MotionSpec::to_json() const {
  Json j = Json::object();
  j.set("mean_fixation_s", mean_fixation_s);
  j.set("peak_velocity_deg_s", peak_velocity_deg_s);
  j.set("large_shift_prob", large_shift_prob);
  j.set("pursuit_prob", pursuit_prob);
  return j;
}

MotionSpec MotionSpec::from_json(const Json& j) {
  MotionSpec m;
  m.mean_fixation_s = j.get_double("mean_fixation_s", m.mean_fixation_s);
  m.peak_velocity_deg_s =
      j.get_double("peak_velocity_deg_s", m.peak_velocity_deg_s);
  m.large_shift_prob = j.get_double("large_shift_prob", m.large_shift_prob);
  m.pursuit_prob = j.get_double("pursuit_prob", m.pursuit_prob);
  return m;
}

Json RecoverySpec::to_json() const {
  Json j = Json::object();
  j.set("nack_retry_budget", nack_retry_budget);
  j.set("nack_backoff", nack_backoff);
  j.set("frame_deadline_ms", frame_deadline_ms);
  j.set("max_assemblies", max_assemblies);
  j.set("max_outstanding_nacks", max_outstanding_nacks);
  return j;
}

RecoverySpec RecoverySpec::from_json(const Json& j) {
  RecoverySpec r;
  r.nack_retry_budget = static_cast<int>(
      j.get_i64("nack_retry_budget", r.nack_retry_budget));
  r.nack_backoff = j.get_bool("nack_backoff", r.nack_backoff);
  r.frame_deadline_ms = j.get_double("frame_deadline_ms", r.frame_deadline_ms);
  r.max_assemblies = j.get_i64("max_assemblies", r.max_assemblies);
  r.max_outstanding_nacks =
      j.get_i64("max_outstanding_nacks", r.max_outstanding_nacks);
  return r;
}

void ChaosSpec::apply(core::SessionConfig& config) const {
  config.seed = seed;
  config.duration = sec_f(duration_s);
  config.diag_faults = diag;
  config.media_chaos = media;
  config.feedback_chaos = feedback;
  config.channel.rss_dbm = traffic.rss_dbm;
  config.channel.mean_cell_load = traffic.mean_cell_load;
  config.channel.load_std = traffic.load_std;
  config.channel.speed_mph = traffic.speed_mph;
  config.head_motion.mean_fixation_s = motion.mean_fixation_s;
  config.head_motion.peak_velocity_deg_s = motion.peak_velocity_deg_s;
  config.head_motion.large_shift_prob = motion.large_shift_prob;
  config.head_motion.pursuit_prob = motion.pursuit_prob;
  config.receiver.nack_retry_budget = recovery.nack_retry_budget;
  config.receiver.nack_backoff = recovery.nack_backoff;
  config.receiver.frame_deadline = sec_f(recovery.frame_deadline_ms / 1000.0);
  config.receiver.max_assemblies =
      static_cast<std::size_t>(recovery.max_assemblies);
  config.receiver.max_outstanding_nacks =
      static_cast<std::size_t>(recovery.max_outstanding_nacks);
}

core::SessionConfig ChaosSpec::session(core::RateControl rate_control) const {
  core::SessionConfig config = core::presets::cellular_static();
  apply(config);
  config.rate_control = rate_control;
  return config;
}

void ChaosSpec::apply(serve::SoakConfig& config) const {
  config.seed = seed;
  apply(config.session);
}

void ChaosSpec::apply(serve::FleetConfig& config) const {
  config.seed = seed;
  config.duration = sec_f(duration_s);
  apply(config.session);
}

Json ChaosSpec::to_json() const {
  Json j = Json::object();
  j.set("seed", seed);
  j.set("duration_s", duration_s);
  j.set("diag", lte::to_json(diag));
  j.set("media", net::to_json(media));
  j.set("feedback", net::to_json(feedback));
  j.set("traffic", traffic.to_json());
  j.set("motion", motion.to_json());
  j.set("recovery", recovery.to_json());
  return j;
}

ChaosSpec ChaosSpec::from_json(const Json& j) {
  ChaosSpec s;
  s.seed = j.get_u64("seed", s.seed);
  s.duration_s = j.get_double("duration_s", s.duration_s);
  if (j.has("diag")) s.diag = lte::diag_fault_config_from_json(j.at("diag"));
  if (j.has("media")) s.media = net::chaos_config_from_json(j.at("media"));
  if (j.has("feedback")) {
    s.feedback = net::chaos_config_from_json(j.at("feedback"));
  }
  if (j.has("traffic")) s.traffic = TrafficSpec::from_json(j.at("traffic"));
  if (j.has("motion")) s.motion = MotionSpec::from_json(j.at("motion"));
  if (j.has("recovery")) {
    s.recovery = RecoverySpec::from_json(j.at("recovery"));
  }
  return s;
}

}  // namespace poi360::search
