#include <gtest/gtest.h>

#include <cmath>

#include "poi360/roi/head_motion.h"
#include "poi360/roi/orientation.h"

namespace poi360::roi {
namespace {

TEST(Orientation, WrapYaw) {
  EXPECT_DOUBLE_EQ(wrap_yaw(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_yaw(180.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_yaw(-180.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_yaw(190.0), -170.0);
  EXPECT_DOUBLE_EQ(wrap_yaw(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(wrap_yaw(540.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_yaw(359.0), -1.0);
}

TEST(Orientation, YawDiffShortestPath) {
  EXPECT_DOUBLE_EQ(yaw_diff(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(yaw_diff(350.0, 10.0), -20.0);
  EXPECT_DOUBLE_EQ(yaw_diff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(yaw_diff(180.0, 0.0), 180.0);
  EXPECT_DOUBLE_EQ(yaw_diff(-90.0, 90.0), 180.0);  // (-180, 180] convention
}

TEST(Orientation, AngularDistanceChebyshev) {
  EXPECT_DOUBLE_EQ(
      angular_distance({0.0, 0.0}, {30.0, 10.0}), 30.0);
  EXPECT_DOUBLE_EQ(
      angular_distance({0.0, 0.0}, {5.0, 40.0}), 40.0);
  EXPECT_DOUBLE_EQ(
      angular_distance({170.0, 0.0}, {-170.0, 0.0}), 20.0);  // wraps
}

TEST(StaticGaze, NeverMoves) {
  StaticGaze gaze({42.0, -10.0});
  EXPECT_DOUBLE_EQ(gaze.orientation_at(0).yaw_deg, 42.0);
  EXPECT_DOUBLE_EQ(gaze.orientation_at(sec(100)).pitch_deg, -10.0);
}

TEST(ScriptedMotion, InterpolatesBetweenWaypoints) {
  ScriptedMotion motion({{sec(0), {0.0, 0.0}}, {sec(10), {100.0, 20.0}}});
  EXPECT_DOUBLE_EQ(motion.orientation_at(sec(0)).yaw_deg, 0.0);
  EXPECT_DOUBLE_EQ(motion.orientation_at(sec(5)).yaw_deg, 50.0);
  EXPECT_DOUBLE_EQ(motion.orientation_at(sec(5)).pitch_deg, 10.0);
  EXPECT_DOUBLE_EQ(motion.orientation_at(sec(10)).yaw_deg, 100.0);
}

TEST(ScriptedMotion, HoldsBeyondEnds) {
  ScriptedMotion motion({{sec(1), {10.0, 0.0}}, {sec(2), {20.0, 0.0}}});
  EXPECT_DOUBLE_EQ(motion.orientation_at(0).yaw_deg, 10.0);
  EXPECT_DOUBLE_EQ(motion.orientation_at(sec(100)).yaw_deg, 20.0);
}

TEST(ScriptedMotion, InterpolatesAcrossWrap) {
  ScriptedMotion motion({{sec(0), {170.0, 0.0}}, {sec(10), {-170.0, 0.0}}});
  // Shortest path goes through 180, not back through 0.
  EXPECT_DOUBLE_EQ(motion.orientation_at(sec(5)).yaw_deg, -180.0);
}

TEST(ScriptedMotion, RejectsBadInput) {
  EXPECT_THROW(ScriptedMotion({}), std::invalid_argument);
  EXPECT_THROW(ScriptedMotion({{sec(2), {0, 0}}, {sec(1), {0, 0}}}),
               std::invalid_argument);
}

TEST(StochasticHeadMotion, DeterministicForSeed) {
  StochasticHeadMotion a({}, 99);
  StochasticHeadMotion b({}, 99);
  for (int i = 0; i < 300; ++i) {
    const SimTime t = msec(100) * i;
    EXPECT_DOUBLE_EQ(a.orientation_at(t).yaw_deg,
                     b.orientation_at(t).yaw_deg);
    EXPECT_DOUBLE_EQ(a.orientation_at(t).pitch_deg,
                     b.orientation_at(t).pitch_deg);
  }
}

TEST(StochasticHeadMotion, QueryOrderIndependent) {
  StochasticHeadMotion forward({}, 7);
  StochasticHeadMotion backward({}, 7);
  std::vector<double> fwd, bwd;
  for (int i = 0; i <= 100; ++i) {
    fwd.push_back(forward.orientation_at(msec(250) * i).yaw_deg);
  }
  for (int i = 100; i >= 0; --i) {
    bwd.push_back(backward.orientation_at(msec(250) * i).yaw_deg);
  }
  for (int i = 0; i <= 100; ++i) {
    EXPECT_DOUBLE_EQ(fwd[static_cast<std::size_t>(i)],
                     bwd[static_cast<std::size_t>(100 - i)]);
  }
}

TEST(StochasticHeadMotion, StaysWithinValidRanges) {
  StochasticHeadMotion motion({}, 3);
  for (int i = 0; i < 3000; ++i) {
    const Orientation o = motion.orientation_at(msec(100) * i);
    EXPECT_GE(o.yaw_deg, -180.0);
    EXPECT_LT(o.yaw_deg, 180.0 + 1e-9);
    EXPECT_LE(std::fabs(o.pitch_deg), 90.0);
  }
}

TEST(StochasticHeadMotion, NegativeTimeClampsToStart) {
  StochasticHeadMotion motion({}, 3);
  const Orientation at0 = motion.orientation_at(0);
  const Orientation before = motion.orientation_at(-sec(5));
  EXPECT_DOUBLE_EQ(at0.yaw_deg, before.yaw_deg);
}

// Property: velocity between close samples never exceeds the configured
// peak velocity (with tolerance for the wrap and numerical slack).
class MotionVelocity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MotionVelocity, BoundedByPeakVelocity) {
  HeadMotionParams params;
  StochasticHeadMotion motion(params, GetParam());
  const SimDuration dt = msec(10);
  Orientation prev = motion.orientation_at(0);
  for (int i = 1; i < 6000; ++i) {
    const Orientation cur = motion.orientation_at(dt * i);
    const double deg = angular_distance(prev, cur);
    const double velocity = deg / to_seconds(dt);
    EXPECT_LE(velocity, params.peak_velocity_deg_s * 1.05)
        << "at t=" << to_seconds(dt * i) << "s";
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MotionVelocity,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// Property: the viewer actually moves — over a minute the yaw should cover
// a substantial range for any seed.
class MotionCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MotionCoverage, ExploresTheSphere) {
  StochasticHeadMotion motion({}, GetParam());
  double min_yaw = 1e9, max_yaw = -1e9;
  bool moved = false;
  Orientation prev = motion.orientation_at(0);
  for (int i = 0; i < 600; ++i) {
    const Orientation o = motion.orientation_at(msec(100) * i);
    min_yaw = std::min(min_yaw, o.yaw_deg);
    max_yaw = std::max(max_yaw, o.yaw_deg);
    if (angular_distance(prev, o) > 5.0) moved = true;
    prev = o;
  }
  EXPECT_TRUE(moved);
  EXPECT_GT(max_yaw - min_yaw, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MotionCoverage,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace poi360::roi
