#pragma once

#include <cstdint>
#include <deque>

#include "poi360/common/ring_buffer.h"
#include "poi360/common/stats.h"
#include "poi360/common/time.h"
#include "poi360/common/units.h"
#include "poi360/lte/diag.h"

namespace poi360::core {

/// Uplink congestion detector (paper Eq. 3).
///
/// J = 1 iff the firmware buffer level increased for K consecutive
/// diagnostic reports AND the current level exceeds Γ(t), the long-term
/// average buffer level (updated online as an EWMA).
class CongestionDetector {
 public:
  struct Config {
    int k = 10;                 // consecutive increases required
    double gamma_alpha = 0.02;  // EWMA weight for Γ(t)
    /// Eq. 3 asks for K strictly increasing reports; on real diag feeds the
    /// per-report TBS quantization makes occasional down-ticks inevitable
    /// even while the buffer is filling, so we tolerate a few, as long as
    /// the level grew over the whole K-report span.
    int allowed_decreases = 2;
  };

  CongestionDetector();
  explicit CongestionDetector(Config config);

  /// Feeds one buffer-level report; returns the congestion indicator J.
  bool on_report(std::int64_t buffer_bytes);

  double gamma() const { return gamma_.value(); }
  bool last_signal() const { return last_signal_; }

 private:
  Config config_;
  RingBuffer<std::int64_t> history_;
  Ewma gamma_;
  bool last_signal_ = false;
};

/// Windowed uplink bandwidth estimator (paper Eq. 4/5).
///
/// R_phy = (sum of TBS over the trailing window) / window duration. When the
/// uplink is saturated (J = 1) this *is* the available bandwidth R_bw; when
/// not saturated it is only a lower bound — which is why FBCC uses it solely
/// on congestion.
class TbsWindowEstimator {
 public:
  struct Config {
    SimDuration window = msec(480);  // W = 480 subframes
  };

  TbsWindowEstimator();
  explicit TbsWindowEstimator(Config config);

  void on_report(const lte::DiagReport& report);

  /// Trailing-window PHY throughput; 0 until any report arrives.
  Bitrate rphy() const;

 private:
  Config config_;
  std::deque<lte::DiagReport> reports_;
};

/// Learns the "sweet spot" firmware buffer level B* (paper §4.3.2): high
/// enough that the proportional-fair scheduler grants the full bandwidth,
/// low enough to avoid queueing delay. The paper notes B* "can be learnt
/// from previous transmissions"; we estimate the grant-curve slope k from
/// unsaturated samples (R_phy ≈ k·B below the knee) and the saturation rate
/// from the largest sustained R_phy, giving B* = headroom · R_sat / k.
class SweetSpotEstimator {
 public:
  struct Config {
    std::int64_t prior_bytes = 9 * 1024;  // until enough samples are seen
    std::int64_t min_bytes = 2 * 1024;
    std::int64_t max_bytes = 30 * 1024;
    /// Target sits this factor above the estimated knee. Also the probe
    /// that lets the decaying-max saturation estimate ratchet up to the
    /// true capacity: pushing B slightly past the believed knee reveals
    /// whether R_phy keeps growing.
    double headroom = 1.15;
    double slope_alpha = 0.05;   // EWMA for the grant-curve slope
    double sat_decay = 0.9995;   // per-sample decay of the max-rate tracker
    int min_samples = 50;
  };

  SweetSpotEstimator();
  explicit SweetSpotEstimator(Config config);

  /// One observation of (buffer level, trailing PHY rate).
  void on_sample(std::int64_t buffer_bytes, Bitrate rphy);

  std::int64_t target_bytes() const;

 private:
  Config config_;
  Ewma slope_;          // bits/s per byte, from low-occupancy samples
  double sat_rate_ = 0.0;  // decaying max of observed R_phy
  int samples_ = 0;
};

/// Firmware-Buffer-aware Congestion Control (paper §4.3) — the sender-side
/// controller combining:
///  * video bitrate control (Eq. 6): on J = 1 clamp R_v to the windowed TBS
///    bandwidth for 2 RTTs, otherwise follow the legacy GCC rate;
///  * RTP rate control (Eq. 7): every diagnostic epoch D_p steer the pacer
///    rate so the firmware buffer converges to the sweet spot B*.
class FbccController {
 public:
  struct Config {
    CongestionDetector::Config detector{};
    TbsWindowEstimator::Config tbs{};
    SweetSpotEstimator::Config sweet_spot{};
    bool learn_sweet_spot = true;
    Bitrate min_rate = kbps(200);
    Bitrate max_rate = mbps(12);
    /// Anti-windup ceiling for Eq. 7: R_rtp <= this factor x R_v.
    double rtp_over_video_cap = 3.0;
    /// Fallback RTT before the first measurement.
    SimDuration initial_rtt = msec(120);
  };

  explicit FbccController(Bitrate initial_rate);
  FbccController(Bitrate initial_rate, Config config);

  /// One diagnostic report from the modem (every D_p = 40 ms).
  void on_diag(const lte::DiagReport& report);

  /// Latest R_gcc from the legacy end-to-end controller (Eq. 6 fallback).
  void on_gcc_rate(Bitrate rgcc);

  /// RTT estimate from the session's feedback loop (for the 2·RTT hold).
  void set_rtt(SimDuration rtt);

  /// R_v per Eq. 6.
  Bitrate video_rate() const { return video_rate_; }
  /// R_rtp per Eq. 7.
  Bitrate rtp_rate() const { return rtp_rate_; }
  /// Current congestion indicator J.
  bool congested() const { return congested_; }
  Bitrate rphy() const { return tbs_.rphy(); }
  std::int64_t sweet_spot_bytes() const;

 private:
  void refresh_video_rate(SimTime now);

  Config config_;
  CongestionDetector detector_;
  TbsWindowEstimator tbs_;
  SweetSpotEstimator sweet_spot_;

  Bitrate gcc_rate_;
  Bitrate video_rate_;
  Bitrate rtp_rate_;
  bool congested_ = false;

  SimDuration rtt_;
  SimTime hold_until_ = -1;
  Bitrate held_rate_ = 0.0;
};

}  // namespace poi360::core
