#include "poi360/search/corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "poi360/search/evaluator.h"

namespace poi360::search {

namespace {

using common::Json;

/// Named metric lookup over a replay measurement. Paired entries get the
/// synthetic "gap_freeze_ratio" on top of the primary outcome's fields.
double metric_value(const std::string& name, const QoeOutcome& primary,
                    const QoeOutcome& baseline, bool paired) {
  if (name == "freeze_ratio") return primary.freeze_ratio;
  if (name == "mean_roi_psnr") return primary.mean_roi_psnr;
  if (name == "p95_delay_ms") return primary.p95_delay_ms;
  if (name == "degraded_fraction") return primary.degraded_fraction;
  if (name == "fallback_episodes") {
    return static_cast<double>(primary.fallback_episodes);
  }
  if (name == "feedback_stale_episodes") {
    return static_cast<double>(primary.feedback_stale_episodes);
  }
  if (name == "frames_abandoned") {
    return static_cast<double>(primary.frames_abandoned);
  }
  if (name == "nack_give_ups") {
    return static_cast<double>(primary.nack_give_ups);
  }
  if (name == "keyframe_requests") {
    return static_cast<double>(primary.keyframe_requests);
  }
  if (paired && name == "gap_freeze_ratio") {
    return std::abs(primary.freeze_ratio - baseline.freeze_ratio);
  }
  throw std::runtime_error("corpus: unknown envelope metric \"" + name +
                           "\"");
}

EnvelopeBound band(const std::string& metric, double value, double rel,
                   double abs_slack) {
  const double slack = std::max(rel * std::abs(value), abs_slack);
  return EnvelopeBound{metric, value - slack, value + slack};
}

core::RateControl rate_control_from_string(const std::string& s) {
  if (s == "FBCC") return core::RateControl::kFbcc;
  if (s == "GCC") return core::RateControl::kGcc;
  throw std::runtime_error("corpus: unknown rate control \"" + s + "\"");
}

std::string fmt6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

CorpusEntry make_entry(const Cliff& cliff) {
  CorpusEntry entry;
  entry.name = cliff.name;
  entry.kind = cliff.kind;
  entry.note = cliff.note;
  entry.spec = cliff.spec;
  entry.rate_control = cliff.rate_control;
  entry.paired = cliff.paired;
  entry.metrics = cliff.outcome;
  entry.baseline = cliff.baseline;

  // Replay is exactly deterministic today, so any envelope containing the
  // point passes; the slack is headroom for *intentional* future drift
  // (e.g. a controller retune) before the corpus demands re-blessing.
  const QoeOutcome& o = cliff.outcome;
  entry.envelope.push_back(band("freeze_ratio", o.freeze_ratio, 0.15, 0.02));
  entry.envelope.push_back(
      band("mean_roi_psnr", o.mean_roi_psnr, 0.05, 0.5));
  entry.envelope.push_back(band("p95_delay_ms", o.p95_delay_ms, 0.20, 30.0));
  if (o.feedback_stale_episodes > 0) {
    entry.envelope.push_back(
        band("feedback_stale_episodes",
             static_cast<double>(o.feedback_stale_episodes), 0.5, 1.0));
  }
  if (o.frames_abandoned > 0) {
    entry.envelope.push_back(band(
        "frames_abandoned", static_cast<double>(o.frames_abandoned), 0.5,
        2.0));
  }
  if (o.fallback_episodes > 0) {
    entry.envelope.push_back(
        band("fallback_episodes", static_cast<double>(o.fallback_episodes),
             0.5, 1.0));
  }
  if (cliff.paired) {
    const double gap =
        std::abs(o.freeze_ratio - cliff.baseline.freeze_ratio);
    entry.envelope.push_back(band("gap_freeze_ratio", gap, 0.30, 0.02));
  }
  return entry;
}

Json to_json(const CorpusEntry& entry) {
  Json j = Json::object();
  j.set("schema", entry.schema);
  j.set("name", entry.name);
  j.set("kind", entry.kind);
  j.set("note", entry.note);
  j.set("rate_control", core::to_string(entry.rate_control));
  j.set("paired", entry.paired);
  j.set("spec", entry.spec.to_json());
  j.set("metrics", entry.metrics.to_json());
  if (entry.paired) j.set("baseline", entry.baseline.to_json());
  Json env = Json::array();
  for (const EnvelopeBound& b : entry.envelope) {
    Json bound = Json::object();
    bound.set("metric", b.metric);
    bound.set("lo", b.lo);
    bound.set("hi", b.hi);
    env.push_back(std::move(bound));
  }
  j.set("envelope", std::move(env));
  return j;
}

CorpusEntry entry_from_json(const Json& j) {
  CorpusEntry entry;
  entry.schema = j.get_string("schema", "");
  if (entry.schema != kCorpusSchema) {
    throw std::runtime_error("corpus: unsupported schema \"" + entry.schema +
                             "\"");
  }
  entry.name = j.at("name").as_string();
  entry.kind = j.get_string("kind", "");
  entry.note = j.get_string("note", "");
  entry.rate_control =
      rate_control_from_string(j.get_string("rate_control", "FBCC"));
  entry.paired = j.get_bool("paired", false);
  entry.spec = ChaosSpec::from_json(j.at("spec"));
  entry.metrics = QoeOutcome::from_json(j.at("metrics"));
  if (entry.paired) entry.baseline = QoeOutcome::from_json(j.at("baseline"));
  const Json& env = j.at("envelope");
  for (std::size_t i = 0; i < env.size(); ++i) {
    const Json& b = env.at(i);
    entry.envelope.push_back(EnvelopeBound{b.at("metric").as_string(),
                                           b.at("lo").as_double(),
                                           b.at("hi").as_double()});
  }
  return entry;
}

void write_corpus(const std::string& dir,
                  const std::vector<CorpusEntry>& entries) {
  std::filesystem::create_directories(dir);
  for (const CorpusEntry& entry : entries) {
    const std::filesystem::path path =
        std::filesystem::path(dir) / (entry.name + ".json");
    std::ofstream out(path);
    if (!out) {
      throw std::runtime_error("corpus: cannot write " + path.string());
    }
    out << to_json(entry).dump(2) << "\n";
  }
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& de : std::filesystem::directory_iterator(dir)) {
    if (de.path().extension() == ".json") paths.push_back(de.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<CorpusEntry> entries;
  entries.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("corpus: cannot read " + path.string());
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      entries.push_back(entry_from_json(Json::parse(buf.str())));
    } catch (const std::exception& e) {
      throw std::runtime_error("corpus: " + path.string() + ": " + e.what());
    }
  }
  return entries;
}

ReplayResult replay_entry(const CorpusEntry& entry, int jobs,
                          double near_edge_margin) {
  Evaluator evaluator(Evaluator::Options{jobs});
  QoeOutcome primary;
  QoeOutcome baseline;
  if (entry.paired) {
    Evaluator::Paired p = evaluator.evaluate_paired({entry.spec})[0];
    // The entry's primary condition is whatever it was measured under.
    primary = entry.rate_control == core::RateControl::kFbcc ? p.fbcc : p.gcc;
    baseline = entry.rate_control == core::RateControl::kFbcc ? p.gcc : p.fbcc;
  } else {
    primary = evaluator.evaluate({entry.spec}, entry.rate_control)[0];
  }

  ReplayResult result;
  result.name = entry.name;
  result.ok = true;
  for (const EnvelopeBound& b : entry.envelope) {
    const double v = metric_value(b.metric, primary, baseline, entry.paired);
    const bool in_band = v >= b.lo && v <= b.hi;
    if (!in_band) result.ok = false;

    MetricMargin m;
    m.metric = b.metric;
    m.value = v;
    m.lo = b.lo;
    m.hi = b.hi;
    m.in_band = in_band;
    const double width = b.hi - b.lo;
    if (in_band && width > 0.0) {
      m.edge_fraction = std::min(v - b.lo, b.hi - v) / width;
    }
    m.near_edge =
        in_band && near_edge_margin > 0.0 && m.edge_fraction < near_edge_margin;
    if (m.near_edge) result.near_edge = true;

    result.detail += "  " + b.metric + " " + fmt6(v) + " in [" + fmt6(b.lo) +
                     ", " + fmt6(b.hi) + "] " + (in_band ? "OK" : "FAIL");
    // Margin-off keeps the detail bytes identical to the pre-margin report
    // (the corpus gate diffs this output).
    if (near_edge_margin > 0.0) {
      result.detail += " edge=" + fmt6(m.edge_fraction);
      if (m.near_edge) result.detail += " NEAR-EDGE";
    }
    result.detail += "\n";
    result.margins.push_back(std::move(m));
  }
  return result;
}

std::vector<ReplayResult> replay_corpus(const std::string& dir, int jobs,
                                        double near_edge_margin) {
  std::vector<ReplayResult> results;
  for (const CorpusEntry& entry : load_corpus(dir)) {
    results.push_back(replay_entry(entry, jobs, near_edge_margin));
  }
  return results;
}

}  // namespace poi360::search
