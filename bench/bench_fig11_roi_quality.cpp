// Reproduces paper Fig. 11: user-perceived video quality in the ROI for
// POI360 vs. Conduit vs. Pyramid compression, over wireline and cellular.
//   (a)/(b) mean ROI PSNR with std, per network;
//   (c)/(d) PDF of the Mean Opinion Score (Table 1 buckets), per network.
//
// Paper shapes to check: all three comparable over wireline; over cellular
// POI360 leads Conduit/Pyramid by ~11-13 dB; Conduit has no good/excellent
// frames over cellular, Pyramid only a few percent good.

#include <cstdio>

#include "poi360/common/table.h"
#include "util/experiment.h"

using namespace poi360;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  constexpr int kRuns = 10;
  const core::CompressionScheme schemes[] = {
      core::CompressionScheme::kPoi360, core::CompressionScheme::kConduit,
      core::CompressionScheme::kPyramid};
  const core::NetworkType networks[] = {core::NetworkType::kWireline,
                                        core::NetworkType::kCellular};

  runner::ExperimentSpec spec(bench::micro_config(
      core::CompressionScheme::kPoi360, core::NetworkType::kWireline));
  spec.name("fig11_roi_quality").repeats(kRuns);
  {
    std::vector<runner::AxisPoint> points;
    for (auto network : networks) {
      points.push_back({core::to_string(network),
                        [network](core::SessionConfig& c) {
                          c = bench::micro_config(c.compression, network,
                                                  c.duration);
                        }});
    }
    spec.axis("network", std::move(points));
  }
  {
    std::vector<runner::AxisPoint> points;
    for (auto scheme : schemes) {
      points.push_back({core::to_string(scheme),
                        [scheme](core::SessionConfig& c) {
                          c.compression = scheme;
                        }});
    }
    spec.axis("scheme", std::move(points));
  }
  const auto batch = bench::run(spec);

  std::printf("=== Fig. 11(a)/(b): ROI PSNR (dB) ===\n");
  Table psnr({"network", "scheme", "mean PSNR (dB)", "std (dB)"});
  std::vector<std::vector<double>> mos_rows;
  std::vector<std::string> mos_labels;

  for (auto network : networks) {
    for (auto scheme : schemes) {
      const auto merged = batch.merged({{"network", core::to_string(network)},
                                        {"scheme", core::to_string(scheme)}});
      psnr.add_row({core::to_string(network), core::to_string(scheme),
                    fmt(merged.mean_roi_psnr(), 1),
                    fmt(merged.std_roi_psnr(), 1)});
      mos_labels.push_back(core::to_string(network) + " / " +
                           core::to_string(scheme));
      mos_rows.push_back(merged.mos_pdf());
    }
  }
  std::printf("%s\n", psnr.to_string().c_str());

  std::printf("=== Fig. 11(c)/(d): MOS PDF ===\n");
  for (std::size_t i = 0; i < mos_rows.size(); ++i) {
    bench::print_mos_row(mos_labels[i], mos_rows[i]);
  }
  return 0;
}
