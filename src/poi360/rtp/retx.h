#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "poi360/rtp/packet.h"

namespace poi360::rtp {

/// Bounded history of sent packets, looked up by sequence number when a
/// NACK asks for a retransmission.
class SentPacketCache {
 public:
  explicit SentPacketCache(std::size_t capacity = 8192)
      : capacity_(capacity) {}

  void insert(const RtpPacket& packet) {
    // Re-inserting a seq (a retransmission passing the pacer again) only
    // refreshes the payload: pushing `order_` twice would let the first
    // eviction of that seq erase a map entry a later `order_` slot still
    // references, silently shrinking the effective capacity.
    const auto [it, inserted] = by_seq_.insert_or_assign(packet.seq, packet);
    (void)it;
    if (!inserted) return;
    order_.push_back(packet.seq);
    while (order_.size() > capacity_) {
      by_seq_.erase(order_.front());
      order_.pop_front();
    }
  }

  std::optional<RtpPacket> lookup(std::int64_t seq) const {
    const auto it = by_seq_.find(seq);
    if (it == by_seq_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return by_seq_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_map<std::int64_t, RtpPacket> by_seq_;
  std::deque<std::int64_t> order_;
};

}  // namespace poi360::rtp
