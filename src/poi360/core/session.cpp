#include "poi360/core/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace poi360::core {

namespace {
constexpr SimDuration kThroughputSamplePeriod = sec(1);
constexpr SimDuration kRetxDedupWindow = msec(150);
constexpr SimDuration kFbccWatchdogPeriod = msec(20);
}  // namespace

Session::Session(SessionConfig config)
    : config_(config),
      grid_(config.grid_cols, config.grid_rows, config.frame_width_px,
            config.frame_height_px),
      matrix_cache_(grid_),
      rng_(config.seed),
      encoder_(grid_, config.encoder),
      packetizer_(),
      adaptive_(config.adaptive),
      conduit_(config.conduit_fov_radius, config.conduit_non_roi_level),
      pyramid_(config.pyramid_c, config.baseline_max_level),
      gcc_sender_(config.initial_rate, config.gcc_loss),
      sender_roi_{config.grid_cols / 2, config.grid_rows / 2},
      roi_predictor_(config.roi_predictor),
      mismatch_tracker_(config.mismatch),
      gcc_receiver_(config.initial_rate, config.gcc_receiver),
      playout_(config.playout) {
  const bool cellular = config_.network == NetworkType::kCellular;
  if (!cellular && config_.rate_control == RateControl::kFbcc) {
    throw std::invalid_argument(
        "FBCC requires the cellular network: it reads modem diagnostics");
  }

  if (config_.motion_trace && !config_.motion_trace->empty()) {
    head_motion_ =
        std::make_unique<roi::MotionTraceView>(config_.motion_trace);
  } else {
    head_motion_ = std::make_unique<roi::StochasticHeadMotion>(
        config_.head_motion, rng_.fork(0xA11CE).engine()());
  }

  // One matrix cache serves every per-frame compression lookup: the adaptive
  // table's K modes plus both baselines, keyed by mode id.
  for (int m = 1; m <= config_.adaptive.num_modes; ++m) {
    matrix_cache_.add_mode(m, adaptive_.table().mode(m));
  }
  matrix_cache_.add_mode(baseline::ConduitMode::kModeId, conduit_);
  matrix_cache_.add_mode(baseline::PyramidMode::kModeId, pyramid_);

  // Per-mode quality-floor bitrates for the adaptive controller: the least
  // bits each mode's surviving pixels can cost at the encoder's maximum
  // quantizer (evaluated with the ROI on the equator; the row position only
  // changes the clamped pitch distances marginally). The matrices come out
  // of the cache, which the capture path reuses for the same (mode, ROI).
  {
    std::vector<Bitrate> floors(
        static_cast<std::size_t>(config_.adaptive.num_modes) + 1, 0.0);
    const video::TileIndex center{grid_.cols() / 2, grid_.rows() / 2};
    for (int m = 1; m <= config_.adaptive.num_modes; ++m) {
      floors[static_cast<std::size_t>(m)] =
          config_.encoder.floor_bpp *
          matrix_cache_.matrix(m, center).effective_tiles() *
          static_cast<double>(grid_.tile_pixels()) * config_.encoder.fps;
    }
    adaptive_.set_mode_floor_rates(std::move(floors));
  }

  if (config_.rate_control == RateControl::kFbcc) {
    fbcc_ = std::make_unique<FbccController>(config_.initial_rate,
                                             config_.fbcc);
  }

  // Media path, back to front: receiver <- core/wireline <- pacer.
  receiver_ = std::make_unique<rtp::RtpReceiver>(
      sim_, config_.receiver,
      [this](const rtp::RtpReceiver::CompletedFrame& f) {
        on_frame_complete(f);
      },
      [this](const std::vector<std::int64_t>& seqs) {
        nack_link_->send(NackMsg{.seqs = seqs, .pli_frames = {}});
      });
  receiver_->set_pli_sink([this](const std::vector<std::int64_t>& frames) {
    nack_link_->send(NackMsg{.seqs = {}, .pli_frames = frames});
  });

  if (cellular) {
    core_link_ = std::make_unique<net::ChaosLink<rtp::RtpPacket>>(
        sim_,
        net::DelayLinkConfig{config_.core_delay, config_.core_jitter,
                             config_.core_loss},
        config_.media_chaos, rng_.fork(0xC0DE).engine()(),
        [this](rtp::RtpPacket p, SimTime at) { receiver_->on_packet(p, at); });
    uplink_ = std::make_unique<lte::LteUplink<rtp::RtpPacket>>(
        sim_, config_.channel, config_.uplink, rng_.fork(0x17E).engine()(),
        [this](rtp::RtpPacket p, SimTime at) {
          if (trace_ && !p.is_retransmission &&
              p.fragment == p.fragments - 1) {
            trace_->span_end(at, "frame", "phy", p.frame_id);
          }
          core_link_->send(std::move(p));
        });
    if (config_.cell_handle.attached()) {
      uplink_->set_cell(config_.cell_handle);
    }
    if (config_.diag_faults.enabled) {
      diag_faults_ = std::make_unique<lte::DiagFaultModel>(
          sim_, config_.diag_faults, rng_.fork(0xFA117).engine()(),
          [this](const lte::DiagReport& r) { on_diag(r); });
      diag_faults_->set_handover_hook(
          [this](SimDuration detach, double gain, SimDuration span) {
            uplink_->begin_handover(detach, gain, span);
          });
      uplink_->set_diag_sink(
          [this](const lte::DiagReport& r) { diag_faults_->on_report(r); });
    } else {
      uplink_->set_diag_sink(
          [this](const lte::DiagReport& r) { on_diag(r); });
    }
  } else {
    wireline_link_ = std::make_unique<net::ChaosLink<rtp::RtpPacket>>(
        sim_,
        net::DelayLinkConfig{config_.wireline_delay, config_.wireline_jitter,
                             config_.wireline_loss},
        config_.media_chaos, rng_.fork(0xC0DE).engine()(),
        [this](rtp::RtpPacket p, SimTime at) { receiver_->on_packet(p, at); });
    wireline_queue_ = std::make_unique<net::DrainQueue<rtp::RtpPacket>>(
        sim_, config_.wireline_rate, config_.wireline_buffer_bytes,
        [this](rtp::RtpPacket p, SimTime at) {
          if (trace_ && !p.is_retransmission &&
              p.fragment == p.fragments - 1) {
            trace_->span_end(at, "frame", "phy", p.frame_id);
          }
          wireline_link_->send(std::move(p));
        });
  }

  pacer_ = std::make_unique<rtp::Pacer>(
      sim_, config_.initial_rate,
      [this](rtp::RtpPacket p) { on_packet_paced(std::move(p)); });

  // Reverse path (feedback + NACK) shares the downlink/back-channel delays.
  const bool wl = !cellular;
  net::DelayLinkConfig reverse{
      wl ? config_.wireline_feedback_delay : config_.feedback_delay,
      wl ? config_.wireline_feedback_jitter : config_.feedback_jitter,
      wl ? config_.wireline_loss : config_.feedback_loss};
  feedback_link_ = std::make_unique<net::ChaosLink<FeedbackMsg>>(
      sim_, reverse, config_.feedback_chaos, rng_.fork(0xFEED).engine()(),
      [this](FeedbackMsg m, SimTime at) { on_feedback(m, at); });
  nack_link_ = std::make_unique<net::ChaosLink<NackMsg>>(
      sim_, reverse, config_.feedback_chaos, rng_.fork(0x7ACC).engine()(),
      [this](NackMsg m, SimTime) { on_nack(m); });

  // Observability last, once every component exists. With tracing off no
  // recorder is built and every `if (trace_)` below stays a null test —
  // the session consumes the RNG identically either way.
  if (config_.trace.enabled) {
    trace_ = std::make_unique<obs::TraceRecorder>(config_.trace);
    obs::TraceRecorder* t = trace_.get();
    adaptive_.set_trace(t);
    if (fbcc_) fbcc_->set_trace(t);
    pacer_->set_trace(t);
    receiver_->set_trace(t);
    if (uplink_) uplink_->set_trace(t);
    if (core_link_) core_link_->set_trace(t, "chaos.media");
    if (wireline_link_) wireline_link_->set_trace(t, "chaos.media");
    feedback_link_->set_trace(t, "chaos.feedback");
    nack_link_->set_trace(t, "chaos.nack");
  }
}

Session::~Session() = default;

Session::Observers Session::observers() const {
  Observers o;
  o.diag_faults = diag_faults_.get();
  const auto* media = core_link_ ? core_link_.get() : wireline_link_.get();
  o.media_chaos = media ? &media->stats() : nullptr;
  o.feedback_chaos = feedback_link_ ? &feedback_link_->stats() : nullptr;
  o.receiver = receiver_.get();
  return o;
}

void Session::run() {
  start();
  advance_until(config_.duration);
  finish();
}

void Session::start() {
  if (ran_) throw std::logic_error("Session::start may be called once");
  ran_ = true;

  if (uplink_) uplink_->start();
  pacer_->start();
  receiver_->start();

  const SimDuration frame_interval = encoder_.frame_interval();
  sim_.schedule_periodic(msec(5), frame_interval, [this]() { on_capture(); });
  sim_.schedule_periodic(msec(5) + frame_interval / 2, frame_interval,
                         [this]() { on_feedback_timer(); });
  sim_.schedule_periodic(kThroughputSamplePeriod, kThroughputSamplePeriod,
                         [this]() { on_throughput_second(); });
  if (fbcc_) {
    // Staleness watchdog: a dead diag feed delivers nothing to hang the
    // fallback decision on, so the check runs on its own clock. The tick
    // also republishes the pacer rate — in degraded mode it moves on GCC
    // feedback, not on diag reports.
    sim_.schedule_periodic(kFbccWatchdogPeriod, kFbccWatchdogPeriod,
                           [this]() {
                             fbcc_->on_tick(sim_.now());
                             pacer_->set_rate(fbcc_->rtp_rate());
                           });
  }
  if (!uplink_) {
    // No diagnostics over wireline: sample rate telemetry on a timer.
    sim_.schedule_periodic(msec(40), msec(40), [this]() {
      record_rate_sample(sim_.now(), 0, 0.0, false);
    });
  }
  if (config_.feedback_guard.enabled) {
    // Feedback-staleness watchdog: the feedback channel going dark delivers
    // nothing to hang the decision on (same reasoning as the FBCC watchdog
    // above), so it runs on its own clock. Draws no randomness and does
    // nothing while the gap stays under the timeout, which is why clean
    // runs are unaffected.
    sim_.schedule_periodic(config_.feedback_guard.check_period,
                           config_.feedback_guard.check_period,
                           [this]() { on_feedback_guard_tick(); });
  }
}

void Session::advance_until(SimTime end) {
  if (!ran_) throw std::logic_error("Session::advance_until before start");
  sim_.run_until(end);
}

void Session::finish() {
  if (!ran_) throw std::logic_error("Session::finish before start");
  if (finished_) return;
  finished_ = true;

  if (fbcc_) {
    metrics_.set_diag_robustness(metrics::DiagRobustness{
        .fallback_episodes = fbcc_->fallback_episodes(),
        .degraded_time = fbcc_->degraded_time(sim_.now()),
        .rejected_reports = fbcc_->rejected_reports(),
    });
  }

  if (feedback_stale_) {  // close an episode still open at session end
    stale_total_ += sim_.now() - stale_since_;
    feedback_stale_ = false;
  }
  const rtp::RtpReceiver::RecoveryStats& rec = receiver_->recovery_stats();
  metrics_.set_transport_robustness(metrics::TransportRobustness{
      .frames_abandoned = rec.frames_abandoned,
      .assembly_evictions = rec.assembly_evictions,
      .nack_give_ups = rec.nack_give_ups,
      .nack_evictions = rec.nack_evictions,
      .invalid_packets = rec.invalid_packets,
      .stale_packets = rec.stale_packets,
      .keyframe_requests = rec.keyframe_requests,
      .sender_frames_dropped = sender_frames_dropped_,
      .feedback_stale_episodes = stale_episodes_,
      .feedback_stale_time = stale_total_,
  });
}

void Session::nudge_conservative() {
  if (config_.compression == CompressionScheme::kPoi360) {
    adaptive_.nudge_conservative(current_video_rate(), sim_.now());
  }
}

// ---------------------------------------------------------------- sender --

Bitrate Session::current_video_rate() const {
  return fbcc_ ? fbcc_->video_rate() : gcc_sender_.target();
}

video::CompressionMatrixView Session::current_matrix_for(
    video::TileIndex roi) const {
  switch (config_.compression) {
    case CompressionScheme::kPoi360:
      return matrix_cache_.matrix(adaptive_.mode_index(), roi);
    case CompressionScheme::kConduit:
      return matrix_cache_.matrix(baseline::ConduitMode::kModeId, roi);
    case CompressionScheme::kPyramid:
      return matrix_cache_.matrix(baseline::PyramidMode::kModeId, roi);
  }
  throw std::logic_error("unknown compression scheme");
}

int Session::current_mode_id() const {
  switch (config_.compression) {
    case CompressionScheme::kPoi360:
      return adaptive_.mode_index();
    case CompressionScheme::kConduit:
      return baseline::ConduitMode::kModeId;
    case CompressionScheme::kPyramid:
      return baseline::PyramidMode::kModeId;
  }
  throw std::logic_error("unknown compression scheme");
}

void Session::on_capture() {
  const Bitrate rv = current_video_rate();
  // Encoder backpressure: when the app buffer holds more than the allowed
  // backlog of playtime, skip this frame (it would only rot in the queue).
  const std::int64_t backlog_limit =
      bytes_at_rate(rv, config_.max_app_backlog);
  if (pacer_->queued_bytes() > backlog_limit) {
    metrics_.note_sender_skipped_frame();
    if (trace_) {
      trace_->instant(
          sim_.now(), "frame", "skip",
          {{"queued_bytes", static_cast<double>(pacer_->queued_bytes())},
           {"backlog_limit", static_cast<double>(backlog_limit)}});
    }
    return;
  }

  // With prediction enabled, compress for where the viewer is heading
  // rather than where the last feedback saw them (§8). Not while feedback
  // is stale: extrapolating the pre-blackout trajectory drifts further from
  // the viewer every frame, so the last reported ROI is the safer anchor.
  video::TileIndex roi = sender_roi_;
  if (config_.roi_prediction_horizon > 0 && roi_predictor_.has_estimate() &&
      !feedback_stale_) {
    const roi::Orientation predicted =
        roi_predictor_.predict(sim_.now() + config_.roi_prediction_horizon);
    roi = grid_.tile_at(predicted.yaw_deg, predicted.pitch_deg);
  }
  video::EncodedFrame frame = encoder_.encode(
      sim_.now(), roi, current_mode_id(),
      current_matrix_for(roi), rv);

  // Content-complexity churn: per-frame size varies lognormally around the
  // target while the encoder holds quality (it spends what the scene needs).
  // The -sigma^2/2 shift keeps the multiplier's mean at 1 so the noise does
  // not inflate the average bitrate.
  if (config_.frame_size_noise_std > 0.0) {
    const double sigma = config_.frame_size_noise_std;
    const double f = std::exp(rng_.normal(-0.5 * sigma * sigma, sigma));
    frame.bytes = std::max<std::int64_t>(
        config_.encoder.overhead_bytes,
        static_cast<std::int64_t>(static_cast<double>(frame.bytes) *
                                  std::clamp(f, 0.5, 2.0)));
  }

  const std::int64_t id = frame.id;
  if (trace_) {
    // Frame-lifecycle chain opens here: capture instant (with the tile-
    // compression decision) and the encode span covering the stitch/encode
    // pipeline latency, closed in hand_frame_to_pacer.
    trace_->instant(sim_.now(), "frame", "capture",
                    {{"mode", static_cast<double>(frame.mode_id)},
                     {"roi_i", static_cast<double>(roi.i)},
                     {"roi_j", static_cast<double>(roi.j)},
                     {"rv_bps", rv}},
                    id);
    trace_->span_begin(sim_.now(), "frame", "encode", id,
                       {{"bytes", static_cast<double>(frame.bytes)}});
  }
  in_flight_.emplace(id, std::move(frame));
  sim_.schedule_in(config_.capture_encode_delay,
                   [this, id]() { hand_frame_to_pacer(id); });
}

void Session::hand_frame_to_pacer(std::int64_t frame_id) {
  const auto it = in_flight_.find(frame_id);
  if (it == in_flight_.end()) return;
  const video::EncodedFrame& frame = it->second;
  if (trace_) {
    trace_->span_end(sim_.now(), "frame", "encode", frame_id,
                     {{"bytes", static_cast<double>(frame.bytes)}});
  }
  for (rtp::RtpPacket& p :
       packetizer_.packetize(frame.id, frame.capture_time, frame.bytes)) {
    pacer_->enqueue(std::move(p));
  }
}

void Session::on_packet_paced(rtp::RtpPacket packet) {
  if (trace_ && !packet.is_retransmission && packet.fragment == 0) {
    // PHY span: first fragment enters the modem buffer (or wireline queue)
    // here; the last fragment leaving the access segment closes it in the
    // uplink/queue sink above.
    trace_->span_begin(sim_.now(), "frame", "phy", packet.frame_id,
                       {{"fragments", static_cast<double>(packet.fragments)}});
  }
  sent_cache_.insert(packet);
  if (uplink_) {
    uplink_->push(std::move(packet));
  } else {
    wireline_queue_->push(std::move(packet));
  }
}

void Session::on_feedback(const FeedbackMsg& msg, SimTime arrival) {
  last_feedback_seen_ = sim_.now();
  if (feedback_stale_ &&
      ++healthy_streak_ >= config_.feedback_guard.recovery_feedbacks) {
    // Enough consecutive feedbacks: leave the fallback. The GCC target is
    // not restored explicitly — the next on_feedback below republishes the
    // receiver's fresh estimate, which the decay never touched.
    feedback_stale_ = false;
    stale_total_ += sim_.now() - stale_since_;
    healthy_streak_ = 0;
    if (trace_) {
      trace_->instant(sim_.now(), "control", "feedback_guard",
                      {{"stale", 0.0},
                       {"episode_ms", to_millis(sim_.now() - stale_since_)}});
    }
  }

  sender_roi_ = msg.roi;
  if (config_.roi_prediction_horizon > 0) {
    roi_predictor_.add_sample(msg.sent_at, msg.gaze);
  }
  if (!feedback_stale_) {
    // While still inside the recovery streak the reported mismatch average
    // spans the blackout and is dominated by it; feeding it to the mode
    // selector would double-count the damage the nudges already priced in.
    adaptive_.on_feedback(msg.mismatch_avg, current_video_rate(), sim_.now());
  }
  const Bitrate rgcc = gcc_sender_.on_feedback(msg.gcc);
  rtt_estimator_.on_report(msg.rtcp, arrival);
  if (fbcc_) {
    fbcc_->on_gcc_rate(rgcc);
    fbcc_->set_rtt(rtt_estimator_.has_estimate()
                       ? rtt_estimator_.smoothed_rtt()
                       : (arrival - msg.sent_at) + msg.last_net_delay);
  } else {
    // Legacy WebRTC behaviour (§3.3): the RTP sending rate simply follows
    // the video encoding rate (plus the pacer's small burst headroom).
    pacer_->set_rate(rgcc * config_.gcc_pacing_factor);
  }
}

void Session::on_nack(const NackMsg& msg) {
  // PLI-style keyframe-recovery requests: the receiver abandoned these
  // frames, so pending packets for them are pure waste on a path that is
  // already losing — purge them from the pacer and forget the frame.
  for (std::int64_t frame_id : msg.pli_frames) {
    const auto it = in_flight_.find(frame_id);
    if (it == in_flight_.end()) continue;
    in_flight_.erase(it);
    pacer_->drop_frame(frame_id);
    ++sender_frames_dropped_;
  }

  const SimTime now = sim_.now();
  for (std::int64_t seq : msg.seqs) {
    const auto recent = recent_retx_.find(seq);
    if (recent != recent_retx_.end() &&
        now - recent->second < kRetxDedupWindow) {
      continue;  // retransmission already in flight
    }
    if (auto packet = sent_cache_.lookup(seq)) {
      packet->is_retransmission = true;
      recent_retx_[seq] = now;
      pacer_->enqueue_front(*packet);
    }
  }
}

void Session::on_feedback_guard_tick() {
  const SimTime now = sim_.now();
  if (now - last_feedback_seen_ <= config_.feedback_guard.timeout) return;

  if (!feedback_stale_) {
    feedback_stale_ = true;
    stale_since_ = now;
    ++stale_episodes_;
    if (trace_) {
      trace_->instant(now, "control", "feedback_guard",
                      {{"stale", 1.0},
                       {"gap_ms", to_millis(now - last_feedback_seen_)}});
    }
  }
  healthy_streak_ = 0;  // any feedback that trickled in did not stick

  // Circuit-breaker decay (RFC 8083 spirit): shrink the published GCC
  // target every check the channel stays dark. Only the published target
  // decays — the internal loss/delay estimators are untouched, so recovery
  // snaps back to the receiver's estimate with the first fresh feedback.
  const Bitrate decayed =
      gcc_sender_.decay_target(config_.feedback_guard.stale_rate_decay);
  if (fbcc_) {
    fbcc_->on_gcc_rate(decayed);
    pacer_->set_rate(fbcc_->rtp_rate());
  } else {
    pacer_->set_rate(decayed * config_.gcc_pacing_factor);
  }

  // With no fresh ROI the viewer may be anywhere: flatten the falloff one
  // step per tick (F_K-ward), bounded by the mode table's conservative end
  // and by each mode's quality-floor budget at the decayed rate.
  if (config_.compression == CompressionScheme::kPoi360) {
    adaptive_.nudge_conservative(current_video_rate(), now);
  }
}

void Session::on_diag(const lte::DiagReport& report) {
  diag_history_.push_back(report);
  while (!diag_history_.empty() &&
         diag_history_.front().time < report.time - sec(1)) {
    diag_history_.pop_front();
  }

  if (fbcc_) {
    fbcc_->on_diag(report, sim_.now());
    pacer_->set_rate(fbcc_->rtp_rate());
  }

  const Bitrate rphy1s = trailing_rphy(sec(1));
  record_rate_sample(report.time, report.buffer_bytes, rphy1s,
                     fbcc_ && fbcc_->congested());
  metrics_.add_buffer_tbs_point(
      {report.time, report.buffer_bytes, rphy1s});
}

Bitrate Session::trailing_rphy(SimDuration window) const {
  if (diag_history_.empty()) return 0.0;
  std::int64_t bytes = 0;
  SimDuration span = 0;
  for (auto it = diag_history_.rbegin(); it != diag_history_.rend(); ++it) {
    if (span >= window) break;
    bytes += it->tbs_bytes;
    span += it->interval;
  }
  return span > 0 ? rate_of(bytes, span) : 0.0;
}

// ---------------------------------------------------------------- viewer --

void Session::on_frame_complete(const rtp::RtpReceiver::CompletedFrame& f) {
  // GCC bases its multiplicative decrease on the incoming-rate estimate;
  // WebRTC measures it over a trailing window long enough to lag transient
  // famines (which is precisely why its cuts land off-target).
  gcc_receiver_.on_frame(f.last_send_time, f.completion,
                         receiver_->incoming_rate(sec(1)));
  last_net_delay_ = f.completion - f.first_send_time;

  // RTCP bookkeeping: the media stream acts as the "sender report"; the
  // next feedback message echoes it as LSR/DLSR so the sender can compute
  // the true control-loop RTT.
  last_sr_timestamp_ = f.first_send_time;
  last_sr_received_ = f.completion;

  // The playout buffer always observes arrivals (its jitter estimate rides
  // the RTCP reports); its schedule only governs display when enabled.
  const SimTime playout_at =
      playout_.schedule(f.capture_time, f.completion) + config_.render_delay;
  const SimTime display_at = config_.use_adaptive_playout
                                 ? playout_at
                                 : f.completion + config_.render_delay;
  sim_.schedule_at(display_at, [this, f]() { on_display(f); });
}

void Session::on_display(const rtp::RtpReceiver::CompletedFrame& f) {
  const auto it = in_flight_.find(f.frame_id);
  if (it == in_flight_.end()) return;
  const video::EncodedFrame& frame = it->second;

  const SimTime now = sim_.now();
  const roi::Orientation gaze = head_motion_->orientation_at(now);
  const video::TileIndex actual_roi =
      grid_.tile_at(gaze.yaw_deg, gaze.pitch_deg);

  const double roi_level = frame.levels.at(actual_roi);
  const double min_level = frame.levels.min_level();
  const SimDuration delay = now - frame.capture_time;

  mismatch_tracker_.on_frame(now, delay, roi_level, min_level, actual_roi);

  const double psnr = video::roi_region_psnr(config_.quality, grid_,
                                              *frame.levels, actual_roi,
                                              frame.bpp);
  if (trace_) {
    trace_->instant(now, "frame", "display",
                    {{"delay_ms", to_millis(delay)},
                     {"psnr_db", psnr},
                     {"roi_level", roi_level},
                     {"mode", static_cast<double>(frame.mode_id)}},
                    f.frame_id);
  }
  metrics_.add_frame(metrics::FrameRecord{
      .frame_id = f.frame_id,
      .capture_time = frame.capture_time,
      .display_time = now,
      .delay = delay,
      .roi_level = roi_level,
      .min_level = min_level,
      .roi_psnr_db = psnr,
      .mos = video::mos_from_psnr(psnr),
      .mode_id = frame.mode_id,
      .roi_mismatch = roi_level > min_level * config_.mismatch.level_tolerance,
  });

  in_flight_.erase(it);
}

void Session::on_feedback_timer() {
  const SimTime now = sim_.now();
  const roi::Orientation gaze = head_motion_->orientation_at(now);
  FeedbackMsg msg;
  msg.roi = grid_.tile_at(gaze.yaw_deg, gaze.pitch_deg);
  msg.gaze = gaze;
  msg.mismatch_avg = mismatch_tracker_.average();
  msg.gcc = gcc::GccFeedback{
      .delay_based_rate = gcc_receiver_.delay_based_rate(),
      .loss_fraction = receiver_->take_loss_fraction(),
      .incoming_rate = receiver_->incoming_rate(),
      .sent_at = now,
  };
  msg.rtcp = rtp::ReceiverReport{
      .last_sr_timestamp = last_sr_timestamp_,
      .delay_since_last_sr =
          last_sr_timestamp_ > 0 ? now - last_sr_received_ : 0,
      .jitter = playout_.measured_jitter(),
      .fraction_lost = 0.0,  // carried in msg.gcc.loss_fraction
  };
  msg.sent_at = now;
  msg.last_net_delay = last_net_delay_;
  feedback_link_->send(msg);
}

// ------------------------------------------------------------- telemetry --

void Session::on_throughput_second() {
  const std::int64_t total = receiver_->total_media_bytes();
  metrics_.add_throughput_second(
      rate_of(total - last_second_bytes_, kThroughputSamplePeriod));
  last_second_bytes_ = total;
}

void Session::record_rate_sample(SimTime now, std::int64_t buffer_bytes,
                                 Bitrate rphy, bool congested) {
  const metrics::RateSample sample{
      .time = now,
      .video_rate = current_video_rate(),
      .rtp_rate = pacer_->rate(),
      .fw_buffer_bytes = buffer_bytes,
      .app_buffer_bytes = pacer_->queued_bytes(),
      .rphy = rphy,
      .congested = congested,
      .fbcc_degraded = fbcc_ && fbcc_->degraded(),
  };
  metrics_.add_rate_sample(sample);
  if (trace_hook_) trace_hook_(sample);
}

}  // namespace poi360::core
