#include "poi360/obs/trace_export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string_view>

namespace poi360::obs {

namespace {

/// Compact numeric form: integral values print without a mantissa so ids
/// and byte counts stay grep-able; everything else gets 6 significant
/// digits.
std::string num(double v) {
  char buf[32];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

std::string args_json(const TraceEvent& e) {
  std::string out = "{";
  for (int i = 0; i < e.n_args; ++i) {
    if (i > 0) out += ",";
    out += "\"" + escape(e.args[i].key) + "\":" + num(e.args[i].value);
  }
  out += "}";
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << body;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            const std::string& process_name,
                            std::uint64_t dropped) {
  // One synthetic thread per category keeps Perfetto's track layout stable:
  // frame-lifecycle spans, control decisions, and fault injections land on
  // separate rows instead of interleaving.
  std::vector<const char*> categories;
  auto tid_of = [&categories](const char* cat) {
    for (std::size_t i = 0; i < categories.size(); ++i) {
      if (std::string_view(categories[i]) == cat) return i + 1;
    }
    categories.push_back(cat);
    return categories.size();
  };

  std::string body;
  body.reserve(128 * events.size() + 256);
  char buf[160];
  for (const TraceEvent& e : events) {
    const std::size_t tid = tid_of(e.category ? e.category : "");
    if (!body.empty()) body += ",\n";
    if (e.phase == Phase::kInstant) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%zu,"
                    "\"ts\":%" PRId64 ",",
                    tid, e.time);
      body += buf;
      if (e.id >= 0) {
        std::snprintf(buf, sizeof(buf), "\"id\":\"%" PRId64 "\",", e.id);
        body += buf;
      }
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"%s\",\"pid\":1,\"tid\":%zu,\"ts\":%" PRId64
                    ",\"id\":\"%" PRId64 "\",",
                    e.phase == Phase::kSpanBegin ? "b" : "e", tid, e.time,
                    e.id);
      body += buf;
    }
    body += "\"cat\":\"" + escape(e.category) + "\",\"name\":\"" +
            escape(e.name) + "\",\"args\":" + args_json(e) + "}";
  }

  std::string meta = "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
                     "\"process_name\",\"args\":{\"name\":\"" +
                     escape(process_name.c_str()) + "\"}}";
  for (std::size_t i = 0; i < categories.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"",
                  i + 1);
    meta += buf;
    meta += escape(categories[i]) + "\"}}";
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
                    "\"dropped_events\":" +
                    std::to_string(dropped) + "},\"traceEvents\":[\n" + meta;
  if (!body.empty()) out += ",\n" + body;
  out += "\n]}\n";
  return out;
}

std::string to_chrome_trace(const TraceRecorder& recorder,
                            const std::string& process_name) {
  return to_chrome_trace(recorder.snapshot(), process_name,
                         recorder.dropped());
}

std::string trace_csv_header() {
  return "seq,time_us,phase,category,name,id,args";
}

std::string to_trace_csv(const std::vector<TraceEvent>& events) {
  std::string out = trace_csv_header() + "\n";
  char buf[96];
  for (const TraceEvent& e : events) {
    const char* phase = e.phase == Phase::kSpanBegin ? "B"
                        : e.phase == Phase::kSpanEnd ? "E"
                                                     : "I";
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%" PRId64 ",%s,", e.seq,
                  e.time, phase);
    out += buf;
    out += e.category ? e.category : "";
    out += ",";
    out += e.name ? e.name : "";
    std::snprintf(buf, sizeof(buf), ",%" PRId64 ",", e.id);
    out += buf;
    for (int i = 0; i < e.n_args; ++i) {
      if (i > 0) out += ";";
      out += e.args[i].key;
      out += "=" + num(e.args[i].value);
    }
    out += "\n";
  }
  return out;
}

std::string to_trace_csv(const TraceRecorder& recorder) {
  return to_trace_csv(recorder.snapshot());
}

void write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder,
                        const std::string& process_name) {
  write_file(path, to_chrome_trace(recorder, process_name));
}

void write_trace_csv(const std::string& path, const TraceRecorder& recorder) {
  write_file(path, to_trace_csv(recorder));
}

}  // namespace poi360::obs
