#include <gtest/gtest.h>

#include "poi360/common/stats.h"
#include "poi360/lte/channel.h"
#include "poi360/lte/multi_user.h"

namespace poi360::lte {
namespace {

TEST(MultiUserCell, NoCompetitorsMeansFullShare) {
  MultiUserCell cell({.background_users = 0}, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(cell.foreground_share(msec(i)), 1.0);
  }
}

TEST(MultiUserCell, ShareBoundedByUserCount) {
  MultiUserCell::Config config;
  config.background_users = 5;
  MultiUserCell cell(config, 2);
  for (int i = 0; i < 60'000; ++i) {
    const double share = cell.foreground_share(msec(i));
    EXPECT_GT(share, 1.0 / 6.0 - 1e-12);
    EXPECT_LE(share, 1.0);
  }
}

TEST(MultiUserCell, DeterministicForSeed) {
  MultiUserCell::Config config;
  config.background_users = 4;
  MultiUserCell a(config, 7), b(config, 7);
  for (int i = 0; i < 30'000; ++i) {
    EXPECT_DOUBLE_EQ(a.foreground_share(msec(i)),
                     b.foreground_share(msec(i)));
  }
}

TEST(MultiUserCell, DutyCycleMatchesOnOffRatio) {
  MultiUserCell::Config config;
  config.background_users = 1;
  config.mean_on = sec(1);
  config.mean_off = sec(3);
  MultiUserCell cell(config, 11);
  int active_samples = 0;
  constexpr int kSamples = 600'000;
  for (int i = 0; i < kSamples; ++i) {
    cell.foreground_share(msec(i));
    if (cell.active_users() == 1) ++active_samples;
  }
  EXPECT_NEAR(static_cast<double>(active_samples) / kSamples, 0.25, 0.06);
}

TEST(MultiUserCell, MoreUsersMeanSmallerAverageShare) {
  auto mean_share = [](int users) {
    MultiUserCell::Config config;
    config.background_users = users;
    MultiUserCell cell(config, 5);
    RunningStats s;
    for (int i = 0; i < 120'000; ++i) {
      s.add(cell.foreground_share(msec(i)));
    }
    return s.mean();
  };
  EXPECT_GT(mean_share(1), mean_share(4));
  EXPECT_GT(mean_share(4), mean_share(16));
}

TEST(MultiUserCell, BackgroundWeightScalesImpact) {
  auto mean_share = [](double weight) {
    MultiUserCell::Config config;
    config.background_users = 6;
    config.background_weight = weight;
    MultiUserCell cell(config, 5);
    RunningStats s;
    for (int i = 0; i < 60'000; ++i) {
      s.add(cell.foreground_share(msec(i)));
    }
    return s.mean();
  };
  EXPECT_GT(mean_share(0.5), mean_share(2.0));
}

TEST(Channel, ExplicitUsersReplaceLoadProcess) {
  ChannelConfig config;
  config.explicit_users = 4;
  config.fading_std = 0.0;
  config.outage_per_min = 0.0;
  UplinkChannel ch(config, 9);
  ASSERT_TRUE(ch.multi_user_cell().has_value());
  // Capacity must track base * share exactly (no fading, no outage).
  const Bitrate base = capacity_for_rss(config.rss_dbm);
  for (int i = 1; i <= 30'000; ++i) {
    const Bitrate cap = ch.advance(msec(i));
    EXPECT_LE(cap, base + 1.0);
    EXPECT_GE(cap, base / 5.0 - 1.0);
  }
}

TEST(Channel, AbstractModelHasNoCell) {
  ChannelConfig config;  // explicit_users = -1
  UplinkChannel ch(config, 9);
  EXPECT_FALSE(ch.multi_user_cell().has_value());
}

}  // namespace
}  // namespace poi360::lte
