#include "poi360/rtp/receiver.h"

#include <algorithm>
#include <utility>

namespace poi360::rtp {

RtpReceiver::RtpReceiver(sim::Simulator& simulator, FrameSink frame_sink,
                         NackSink nack_sink, SimDuration nack_retry)
    : sim_(simulator),
      frame_sink_(std::move(frame_sink)),
      nack_sink_(std::move(nack_sink)),
      nack_retry_(nack_retry) {}

void RtpReceiver::start() {
  sim_.schedule_periodic(sim_.now() + nack_retry_, nack_retry_,
                         [this]() { on_nack_retry(); });
}

void RtpReceiver::detect_gaps(std::int64_t seq) {
  if (seq < next_expected_seq_) {
    // Retransmission (or reordering): no longer missing.
    outstanding_nacks_.erase(seq);
    return;
  }
  if (seq > next_expected_seq_) {
    std::vector<std::int64_t> missing;
    for (std::int64_t s = next_expected_seq_; s < seq; ++s) {
      missing.push_back(s);
      outstanding_nacks_.insert(s);
    }
    interval_lost_ += static_cast<std::int64_t>(missing.size());
    if (nack_sink_ && !missing.empty()) {
      nacks_sent_ += static_cast<std::int64_t>(missing.size());
      nack_sink_(missing);
    }
  }
  next_expected_seq_ = seq + 1;
}

void RtpReceiver::on_packet(const RtpPacket& packet, SimTime arrival) {
  ++interval_received_;
  total_bytes_ += packet.bytes;
  arrivals_.emplace_back(arrival, packet.bytes);
  while (!arrivals_.empty() && arrivals_.front().first < arrival - sec(2)) {
    arrivals_.pop_front();
  }

  detect_gaps(packet.seq);

  auto& a = frames_[packet.frame_id];
  if (a.received.empty()) {
    a.received.assign(static_cast<std::size_t>(packet.fragments), 0);
    a.capture_time = packet.capture_time;
    a.first_send_time = packet.send_time;
    a.first_arrival = arrival;
  }
  const auto idx = static_cast<std::size_t>(packet.fragment);
  if (idx >= a.received.size() || a.received[idx]) {
    return;  // duplicate
  }
  a.received[idx] = 1;
  ++a.received_count;
  a.bytes += packet.bytes;
  a.first_send_time = std::min(a.first_send_time, packet.send_time);
  a.last_send_time = std::max(a.last_send_time, packet.send_time);
  a.had_loss = a.had_loss || packet.is_retransmission;

  if (a.received_count == static_cast<int>(a.received.size())) {
    CompletedFrame done{
        .frame_id = packet.frame_id,
        .capture_time = a.capture_time,
        .bytes = a.bytes,
        .first_send_time = a.first_send_time,
        .last_send_time = a.last_send_time,
        .first_arrival = a.first_arrival,
        .completion = arrival,
        .fragments = static_cast<int>(a.received.size()),
        .had_loss = a.had_loss,
    };
    frames_.erase(packet.frame_id);
    ++frames_completed_;
    if (frame_sink_) frame_sink_(done);
  }
}

void RtpReceiver::on_nack_retry() {
  if (outstanding_nacks_.empty() || !nack_sink_) return;
  std::vector<std::int64_t> missing(outstanding_nacks_.begin(),
                                    outstanding_nacks_.end());
  nacks_sent_ += static_cast<std::int64_t>(missing.size());
  nack_sink_(missing);
}

double RtpReceiver::take_loss_fraction() {
  const std::int64_t total = interval_received_ + interval_lost_;
  const double fraction =
      total > 0 ? static_cast<double>(interval_lost_) /
                      static_cast<double>(total)
                : 0.0;
  interval_received_ = 0;
  interval_lost_ = 0;
  return fraction;
}

Bitrate RtpReceiver::incoming_rate(SimDuration window) const {
  if (arrivals_.empty() || window <= 0) return 0.0;
  // No estimate until a full window of history exists: a half-filled window
  // under-reads the rate, and the AIMD cap would slash the target at session
  // start.
  if (arrivals_.back().first - arrivals_.front().first < window) return 0.0;
  const SimTime cutoff = arrivals_.back().first - window;
  std::int64_t bytes = 0;
  for (auto it = arrivals_.rbegin(); it != arrivals_.rend(); ++it) {
    if (it->first < cutoff) break;
    bytes += it->second;
  }
  return rate_of(bytes, window);
}

}  // namespace poi360::rtp
