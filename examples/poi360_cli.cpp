// Command-line driver: run any POI360 session configuration and print a
// summary or per-frame CSV. The flags cover the axes of the paper's
// evaluation, so arbitrary conditions can be explored without writing code.
//
//   $ ./example_poi360_cli --scheme poi360 --rc fbcc --net cellular
//         ... --rss -82 --speed 30 --users 6 --duration 120 --csv frames
//
// Flags (all optional):
//   --scheme poi360|conduit|pyramid     compression scheme
//   --rc fbcc|gcc                       transport rate control
//   --net cellular|wireline             access network
//   --rss <dBm>                         received signal strength
//   --load <0..0.9>                     mean background cell load
//   --speed <mph>                       mobility (enables handover outages)
//   --users <n>                         explicit multi-user PF cell
//   --predict <ms>                      ROI prediction horizon
//   --playout                           enable the adaptive jitter buffer
//   --duration <s>, --seed <n>
//   --csv frames|rates                  dump per-frame / per-sample CSV
//   --runs <n>                          seeded repeats (seed, seed+7919, ...)
//   --jobs <n>                          worker threads for --runs > 1
//   --out-json / --out-csv <path>       structured per-run results
//   --progress                          per-run completion on stderr

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "poi360/core/config.h"
#include "poi360/core/session.h"
#include "poi360/metrics/session_metrics.h"
#include "poi360/runner/batch_runner.h"
#include "poi360/runner/experiment_spec.h"
#include "poi360/runner/result_io.h"

using namespace poi360;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--scheme poi360|conduit|pyramid] "
                       "[--rc fbcc|gcc] [--net cellular|wireline] "
                       "[--rss dBm] [--load f] [--speed mph] [--users n] "
                       "[--diag-loss f] [--diag-stalls per_min] "
                       "[--diag-handovers per_min] "
                       "[--predict ms] [--playout] [--duration s] "
                       "[--seed n] [--csv frames|rates] "
                       "[--runs n] [--jobs n] [--out-json path] "
                       "[--out-csv path] [--progress]\n",
               argv0);
  std::exit(2);
}

void print_summary(const core::SessionConfig& config,
                   const metrics::SessionMetrics& m) {
  const auto pdf = m.mos_pdf();
  const auto delays = m.frame_delays_ms();
  std::printf("frames=%lld skipped=%lld psnr=%.1fdB freeze=%.1f%% "
              "thpt=%.2fMbps delay_p50=%.0fms p99=%.0fms\n",
              static_cast<long long>(m.displayed_frames()),
              static_cast<long long>(m.skipped_frames()), m.mean_roi_psnr(),
              m.freeze_ratio() * 100.0, to_mbps(m.mean_throughput()),
              delays.median(), delays.percentile(0.99));
  std::printf("mos: bad=%.1f%% poor=%.1f%% fair=%.1f%% good=%.1f%% "
              "excellent=%.1f%%\n",
              pdf[0] * 100, pdf[1] * 100, pdf[2] * 100, pdf[3] * 100,
              pdf[4] * 100);
  if (config.diag_faults.enabled) {
    const auto& r = m.diag_robustness();
    std::printf("diag: fallbacks=%lld degraded=%.1f%% rejected=%lld\n",
                static_cast<long long>(r.fallback_episodes),
                to_seconds(r.degraded_time) / to_seconds(config.duration) *
                    100.0,
                static_cast<long long>(r.rejected_reports));
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::SessionConfig config = core::presets::cellular_static();
  std::string csv;
  double speed = -1.0;
  int runs = 1;
  int jobs = 0;  // 0 = auto (POI360_JOBS env var, else hardware_concurrency)
  bool progress = false;
  std::string out_json, out_csv;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--scheme") {
      const std::string v = value();
      if (v == "poi360") config.compression = core::CompressionScheme::kPoi360;
      else if (v == "conduit") config.compression = core::CompressionScheme::kConduit;
      else if (v == "pyramid") config.compression = core::CompressionScheme::kPyramid;
      else usage(argv[0]);
    } else if (flag == "--rc") {
      const std::string v = value();
      if (v == "fbcc") config.rate_control = core::RateControl::kFbcc;
      else if (v == "gcc") config.rate_control = core::RateControl::kGcc;
      else usage(argv[0]);
    } else if (flag == "--net") {
      const std::string v = value();
      if (v == "cellular") {
        config.network = core::NetworkType::kCellular;
      } else if (v == "wireline") {
        config.network = core::NetworkType::kWireline;
        config.rate_control = core::RateControl::kGcc;
      } else {
        usage(argv[0]);
      }
    } else if (flag == "--rss") {
      config.channel.rss_dbm = std::atof(value().c_str());
    } else if (flag == "--load") {
      config.channel.mean_cell_load = std::atof(value().c_str());
    } else if (flag == "--speed") {
      speed = std::atof(value().c_str());
    } else if (flag == "--users") {
      config.channel.explicit_users = std::atoi(value().c_str());
    } else if (flag == "--diag-loss") {
      config.diag_faults.enabled = true;
      config.diag_faults.loss_prob = std::atof(value().c_str());
    } else if (flag == "--diag-stalls") {
      config.diag_faults.enabled = true;
      config.diag_faults.stall_per_min = std::atof(value().c_str());
    } else if (flag == "--diag-handovers") {
      config.diag_faults.enabled = true;
      config.diag_faults.handover_per_min = std::atof(value().c_str());
    } else if (flag == "--predict") {
      config.roi_prediction_horizon = msec(std::atoll(value().c_str()));
    } else if (flag == "--playout") {
      config.use_adaptive_playout = true;
    } else if (flag == "--duration") {
      config.duration = sec(std::atoll(value().c_str()));
    } else if (flag == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (flag == "--csv") {
      csv = value();
      if (csv != "frames" && csv != "rates") usage(argv[0]);
    } else if (flag == "--runs") {
      runs = std::atoi(value().c_str());
      if (runs < 1) usage(argv[0]);
    } else if (flag == "--jobs") {
      jobs = std::atoi(value().c_str());
      if (jobs < 1) usage(argv[0]);
    } else if (flag == "--out-json") {
      out_json = value();
    } else if (flag == "--out-csv") {
      out_csv = value();
    } else if (flag == "--progress") {
      progress = true;
    } else {
      usage(argv[0]);
    }
  }
  if (!csv.empty() && runs > 1) {
    std::fprintf(stderr, "--csv dumps one run; use --out-json/--out-csv for "
                         "multi-run batches\n");
    return 2;
  }
  if (speed >= 0.0) {
    const double rss = config.channel.rss_dbm;
    const auto driving = core::presets::cellular_driving(speed);
    config.channel = driving.channel;
    config.channel.rss_dbm = rss;  // keep an explicit --rss override
  }

  runner::ExperimentSpec spec(config);
  spec.name("poi360_cli").repeats(runs).seed0(config.seed);
  runner::BatchRunner::Options options;
  options.jobs = jobs;
  if (progress) {
    options.on_progress = [](const runner::RunResult& r, int done,
                             int total) {
      std::fprintf(stderr, "[cli] %d/%d seed=%llu %s%s\n", done, total,
                   static_cast<unsigned long long>(r.spec.seed),
                   r.ok ? "ok" : "FAILED: ", r.ok ? "" : r.error.c_str());
    };
  }
  const runner::BatchResult batch = runner::BatchRunner(options).run(spec);
  if (!out_json.empty()) runner::write_json(out_json, batch);
  if (!out_csv.empty()) runner::write_csv(out_csv, batch);
  for (const runner::RunResult& r : batch.runs) {
    if (!r.ok) {
      std::fprintf(stderr, "run seed=%llu failed: %s\n",
                   static_cast<unsigned long long>(r.spec.seed),
                   r.error.c_str());
    }
  }
  if (batch.ok_count() == 0) return 1;
  const auto& m = batch.runs.front().metrics;

  // Both CSV dumps read the shared column tables in metrics/session_metrics
  // (one schema for every emitter), so the layout here cannot drift from
  // other tooling.
  if (csv == "frames") {
    std::printf("%s\n", metrics::frame_csv_header().c_str());
    for (const auto& f : m.frames()) {
      std::printf("%s\n", metrics::frame_csv_row(f).c_str());
    }
    return 0;
  }
  if (csv == "rates") {
    std::printf("%s\n", metrics::rate_csv_header().c_str());
    for (const auto& r : m.rate_samples()) {
      std::printf("%s\n", metrics::rate_csv_row(r).c_str());
    }
    return 0;
  }

  std::printf("scheme=%s rc=%s net=%s duration=%.0fs seed=%llu\n",
              core::to_string(config.compression).c_str(),
              core::to_string(config.rate_control).c_str(),
              core::to_string(config.network).c_str(),
              to_seconds(config.duration),
              static_cast<unsigned long long>(config.seed));
  if (runs == 1) {
    print_summary(config, m);
  } else {
    std::printf("runs=%d ok=%d failed=%d jobs=%d\n", runs,
                static_cast<int>(batch.ok_count()),
                static_cast<int>(batch.failed_count()), batch.jobs);
    print_summary(config, batch.merged());
  }
  return batch.failed_count() == 0 ? 0 : 1;
}
