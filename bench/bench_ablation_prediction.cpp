// Extension study (paper §8): motion-based ROI prediction.
//
// The paper argues prediction cannot rescue ROI compression over LTE: head
// motion "after 120 ms is unpredictable, which is below the typical video
// latency over LTE". This sweep turns on a constant-velocity predictor at
// growing horizons. The expected shape: small horizons shave a little off
// the mismatch (slightly better PSNR), horizons at cellular-latency scale
// (>= 300-600 ms) mispredict during direction changes and stop helping or
// hurt — POI360's adaptive compression remains necessary.

#include <cstdio>

#include "poi360/common/table.h"
#include "util/experiment.h"

using namespace poi360;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const std::vector<int> horizons_ms = {0, 60, 120, 300, 600, 1000};

  runner::ExperimentSpec spec(bench::micro_config(
      core::CompressionScheme::kPoi360, core::NetworkType::kCellular,
      sec(150)));
  spec.name("ablation_prediction")
      .sweep("horizon (ms)", horizons_ms,
             [](core::SessionConfig& c, int ms) {
               c.roi_prediction_horizon = msec(ms);
             })
      .repeats(6);
  const auto batch = bench::run(spec);

  Table t({"horizon (ms)", "mean PSNR (dB)", "freeze ratio",
           "mismatched frames"});
  for (int ms : horizons_ms) {
    const auto merged =
        batch.merged({{"horizon (ms)", std::to_string(ms)}});
    std::int64_t mismatched = 0;
    for (const auto& f : merged.frames()) {
      if (f.roi_mismatch) ++mismatched;
    }
    t.add_row({std::to_string(ms), fmt(merged.mean_roi_psnr(), 2),
               fmt_pct(merged.freeze_ratio()),
               fmt_pct(static_cast<double>(mismatched) /
                       static_cast<double>(merged.displayed_frames()))});
  }
  std::printf("=== Extension: motion-based ROI prediction horizons ===\n%s",
              t.to_string().c_str());
  return 0;
}
