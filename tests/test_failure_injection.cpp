// Failure-injection tests: the session must degrade gracefully — never
// deadlock, crash, or corrupt its accounting — under hostile network
// conditions well outside the calibrated operating range.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "poi360/core/config.h"
#include "poi360/core/session.h"
#include "poi360/lte/trace.h"

namespace poi360::core {
namespace {

void expect_sane(const metrics::SessionMetrics& m) {
  std::set<std::int64_t> ids;
  for (const auto& f : m.frames()) {
    EXPECT_TRUE(ids.insert(f.frame_id).second);
    EXPECT_GT(f.delay, 0);
    EXPECT_GE(f.roi_level, 1.0);
  }
  EXPECT_GE(m.skipped_frames(), 0);
}

TEST(FailureInjection, HeavyMediaLossRecoveredByNack) {
  SessionConfig config = presets::cellular_static();
  config.core_loss = 0.05;  // 5% of media packets dropped in the core
  config.duration = sec(20);
  config.seed = 51;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  // NACK recovery keeps the stream alive; most frames still display.
  EXPECT_GT(m.displayed_frames(), 500);
  expect_sane(m);
}

TEST(FailureInjection, LossyFeedbackChannel) {
  SessionConfig config = presets::cellular_static();
  config.feedback_loss = 0.30;  // 30% of ROI/congestion feedback lost
  config.duration = sec(20);
  config.seed = 52;
  Session session(config);
  session.run();
  // Stale ROI knowledge hurts quality but must not stall the pipeline.
  EXPECT_GT(session.metrics().displayed_frames(), 500);
  expect_sane(session.metrics());
}

TEST(FailureInjection, TotalOutagePeriodsViaTrace) {
  // Capacity hard-zero for two seconds out of every ten.
  auto trace = std::make_shared<lte::CapacityTrace>();
  trace->add(0, mbps(4));
  trace->add(sec(6), 0.0);
  trace->add(sec(8), mbps(4));
  trace->add(sec(10) - msec(1), mbps(4));

  SessionConfig config = presets::cellular_static();
  config.channel.capacity_trace = trace;
  config.duration = sec(40);
  config.seed = 53;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  // Frames freeze and the sender skips under backlog, but the session
  // recovers every cycle and keeps its accounting consistent.
  EXPECT_GT(m.displayed_frames(), 300);
  EXPECT_GT(m.freeze_ratio(), 0.05);
  expect_sane(m);
}

TEST(FailureInjection, NearZeroCapacityNeverDeadlocks) {
  auto trace = std::make_shared<lte::CapacityTrace>();
  trace->add(0, kbps(120));
  trace->add(sec(5) - msec(1), kbps(120));

  SessionConfig config = presets::cellular_static();
  config.channel.capacity_trace = trace;
  config.duration = sec(20);
  config.seed = 54;
  Session session(config);
  session.run();  // must terminate
  const auto& m = session.metrics();
  // Starvation: nearly everything skips or freezes, but nothing crashes.
  EXPECT_GT(m.displayed_frames() + m.skipped_frames(), 300);
  expect_sane(m);
}

TEST(FailureInjection, ExtremeJitterKeepsOrdering) {
  SessionConfig config = presets::cellular_static();
  config.core_jitter = msec(60);
  config.feedback_jitter = msec(60);
  config.duration = sec(15);
  config.seed = 55;
  Session session(config);
  session.run();
  EXPECT_GT(session.metrics().displayed_frames(), 400);
  expect_sane(session.metrics());
}

TEST(FailureInjection, TinyFirmwareBufferDropsButSurvives) {
  SessionConfig config = presets::cellular_static();
  config.uplink.buffer_limit_bytes = 8'000;  // absurdly small modem buffer
  config.duration = sec(15);
  config.seed = 56;
  Session session(config);
  session.run();
  // Drop-tail at the modem forces NACK recovery; stream survives.
  EXPECT_GT(session.metrics().displayed_frames(), 200);
  expect_sane(session.metrics());
}

TEST(FailureInjection, HighBlerChannel) {
  SessionConfig config = presets::cellular_static();
  config.uplink.bler = 0.25;
  config.duration = sec(15);
  config.seed = 57;
  Session session(config);
  session.run();
  EXPECT_GT(session.metrics().displayed_frames(), 300);
  expect_sane(session.metrics());
}

TEST(FailureInjection, DiagFaultsPlusLossyFeedback) {
  // The control plane fails on both ends at once: 30% of the receiver's
  // ROI/congestion feedback vanishes while the diag sensor drops 30% of
  // its reports and stalls for ~half-second bursts. FBCC must fall back
  // to (stale) GCC pacing without wedging the pipeline.
  SessionConfig config = presets::cellular_static();
  config.feedback_loss = 0.30;
  config.duration = sec(20);
  config.seed = 61;
  config.diag_faults.enabled = true;
  config.diag_faults.loss_prob = 0.30;
  config.diag_faults.stall_per_min = 8.0;
  config.diag_faults.stall_mean_duration = msec(500);
  config.diag_faults.stall_min_duration = msec(250);
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  EXPECT_GT(m.displayed_frames(), 400);
  EXPECT_GE(m.diag_robustness().fallback_episodes, 1);
  expect_sane(m);
}

TEST(FailureInjection, DiagFaultsDuringTraceOutages) {
  // Capacity outages and a faulty sensor together: the one scenario where
  // a naive FBCC would read pre-outage buffer history and slam the rate.
  // The hardened controller resets across gaps and recovers every cycle.
  auto trace = std::make_shared<lte::CapacityTrace>();
  trace->add(0, mbps(4));
  trace->add(sec(6), 0.0);
  trace->add(sec(8), mbps(4));
  trace->add(sec(10) - msec(1), mbps(4));

  SessionConfig config = presets::cellular_static();
  config.channel.capacity_trace = trace;
  config.duration = sec(40);
  config.seed = 62;
  config.diag_faults.enabled = true;
  config.diag_faults.loss_prob = 0.20;
  config.diag_faults.stall_per_min = 6.0;
  config.diag_faults.garbage_prob = 0.10;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  EXPECT_GT(m.displayed_frames(), 250);
  EXPECT_GT(m.diag_robustness().rejected_reports, 0);
  expect_sane(m);
  // Recovery: the tail of the run (post final outage) still displays
  // frames, so the session is not latched in a stalled state.
  std::int64_t late_frames = 0;
  for (const auto& f : m.frames()) {
    if (f.display_time > sec(35)) ++late_frames;
  }
  EXPECT_GT(late_frames, 30);
}

TEST(FailureInjection, EverythingAtOnce) {
  // Kitchen sink: media loss, feedback loss, jitter, high BLER, diag
  // faults with handovers. Pure survivability — accounting stays sane
  // and the session terminates with frames on screen.
  SessionConfig config = presets::cellular_static();
  config.core_loss = 0.03;
  config.feedback_loss = 0.20;
  config.core_jitter = msec(40);
  config.uplink.bler = 0.15;
  config.duration = sec(25);
  config.seed = 63;
  config.diag_faults.enabled = true;
  config.diag_faults.loss_prob = 0.25;
  config.diag_faults.stall_per_min = 6.0;
  config.diag_faults.delivery_jitter = msec(120);
  config.diag_faults.duplicate_prob = 0.05;
  config.diag_faults.garbage_prob = 0.05;
  config.diag_faults.handover_per_min = 3.0;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  EXPECT_GT(m.displayed_frames(), 200);
  EXPECT_LE(m.diag_robustness().degraded_time, config.duration);
  expect_sane(m);
}

TEST(FailureInjection, ViewerSpinningConstantly) {
  SessionConfig config = presets::cellular_static();
  config.head_motion.pursuit_prob = 1.0;
  config.head_motion.pursuit_speed_mean_deg_s = 90.0;
  config.head_motion.mean_fixation_s = 0.25;
  config.duration = sec(15);
  config.seed = 58;
  Session session(config);
  session.run();
  const auto& m = session.metrics();
  EXPECT_GT(m.displayed_frames(), 400);
  // Constant motion means constant mismatch pressure: quality suffers but
  // the adaptive controller keeps the stream fair-or-better on average.
  EXPECT_GT(m.mean_roi_psnr(), 20.0);
  expect_sane(m);
}

}  // namespace
}  // namespace poi360::core
