#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "poi360/common/time.h"

// Statistics helpers shared by controllers, metrics collection and the
// benchmark harnesses (CDFs, PDFs, windowed deviations).

namespace poi360 {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average.
///
/// FBCC's long-term buffer-level threshold Γ(t) in Eq. 3 is "the long-term
/// average buffer level [that] keeps being updated online" — an EWMA.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Collects raw samples and answers distribution queries (CDF, percentiles).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// p in [0, 1]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }

  /// Empirical CDF value at x: fraction of samples <= x.
  double cdf_at(double x) const;

  /// Fraction of samples strictly above x.
  double fraction_above(double x) const { return 1.0 - cdf_at(x); }

  /// Evenly spaced (value, cdf) points suitable for plotting `bins+1` rows.
  std::vector<std::pair<double, double>> cdf_points(int bins) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Standard deviation over a sliding time window of (time, value) samples.
///
/// The paper characterizes short-term ROI quality stability as "the standard
/// deviation of the ROI compression level in a 2 second sliding window"
/// (Fig. 12); this is that window.
class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(SimDuration window) : window_(window) {}

  void add(SimTime t, double value);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;

 private:
  void evict(SimTime now);

  SimDuration window_;
  std::deque<std::pair<SimTime, double>> samples_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_fraction(std::size_t i) const;
  double bin_center(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace poi360
