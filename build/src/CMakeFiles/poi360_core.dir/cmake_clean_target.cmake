file(REMOVE_RECURSE
  "libpoi360_core.a"
)
