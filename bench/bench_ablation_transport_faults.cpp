// Ablation: transport-path chaos vs. bounded loss recovery. The paper's
// evaluation runs on live networks whose faults arrive in bursts (fades,
// handovers, cross-traffic spikes); the simulator's clean i.i.d.-loss links
// hide what recovery machinery that takes. This ablation crosses
// {FBCC, GCC} with escalating fault profiles: clean links (legacy receiver),
// Gilbert-Elliott burst loss, and full chaos (bursts + blackouts +
// reordering + duplication + delay spikes on the media path, blackout
// windows on the feedback path). The bounded receiver must keep its state
// capped and convert unrecoverable losses into abandoned frames; the
// feedback guard must carry the sender across dark reverse-path windows.

#include <cstdio>
#include <string>
#include <vector>

#include "poi360/common/table.h"
#include "util/experiment.h"

using namespace poi360;

namespace {

enum class Faults { kClean, kBurst, kChaos };

rtp::RtpReceiver::Config bounded_receiver() {
  rtp::RtpReceiver::Config r;
  r.nack_retry_budget = 4;
  r.nack_backoff = true;
  r.frame_deadline = msec(600);
  r.max_assemblies = 64;
  r.max_outstanding_nacks = 512;
  return r;
}

net::ChaosConfig burst_profile() {
  net::ChaosConfig c;
  c.ge_p_good_bad = 0.02;
  c.ge_p_bad_good = 0.2;   // ~9% loss in fades of ~5 packets
  c.ge_loss_bad = 0.95;
  return c;
}

void apply(Faults faults, core::SessionConfig& c) {
  if (faults == Faults::kClean) return;
  c.receiver = bounded_receiver();
  c.media_chaos = burst_profile();
  if (faults == Faults::kChaos) {
    c.media_chaos.blackout_per_min = 6.0;
    c.media_chaos.blackout_mean_duration = msec(800);
    c.media_chaos.blackout_min_duration = msec(500);
    c.media_chaos.reorder_prob = 0.02;
    c.media_chaos.duplicate_prob = 0.01;
    c.media_chaos.spike_per_min = 4.0;
    c.feedback_chaos.blackout_per_min = 4.0;
    c.feedback_chaos.blackout_mean_duration = msec(1200);
    c.feedback_chaos.blackout_min_duration = msec(800);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  struct Cell {
    const char* transport;
    core::RateControl rc;
    const char* label;
    Faults faults;
  };
  const Cell cells[] = {
      {"FBCC", core::RateControl::kFbcc, "clean", Faults::kClean},
      {"FBCC", core::RateControl::kFbcc, "burst", Faults::kBurst},
      {"FBCC", core::RateControl::kFbcc, "chaos", Faults::kChaos},
      {"GCC", core::RateControl::kGcc, "clean", Faults::kClean},
      {"GCC", core::RateControl::kGcc, "burst", Faults::kBurst},
      {"GCC", core::RateControl::kGcc, "chaos", Faults::kChaos},
  };

  runner::ExperimentSpec spec(
      bench::transport_config(core::RateControl::kFbcc, sec(60)));
  spec.name("ablation_transport_faults").repeats(4);
  {
    std::vector<runner::AxisPoint> points;
    for (const Cell& cell : cells) {
      points.push_back({std::string(cell.transport) + " / " + cell.label,
                        [cell](core::SessionConfig& c) {
                          c.rate_control = cell.rc;
                          apply(cell.faults, c);
                        }});
    }
    spec.axis("cell", std::move(points));
  }
  const auto batch = bench::run(spec);

  Table t({"transport", "faults", "displayed", "freeze ratio",
           "mean PSNR (dB)", "thpt (Mbps)", "abandoned", "give-ups",
           "stale eps", "stale time (s)"});
  for (const Cell& cell : cells) {
    const auto merged = batch.merged(
        {{"cell", std::string(cell.transport) + " / " + cell.label}});
    const auto& r = merged.transport_robustness();
    t.add_row({cell.transport, cell.label,
               std::to_string(merged.displayed_frames()),
               fmt_pct(merged.freeze_ratio()),
               fmt(merged.mean_roi_psnr(), 1),
               fmt(to_mbps(merged.mean_throughput()), 2),
               std::to_string(r.frames_abandoned),
               std::to_string(r.nack_give_ups),
               std::to_string(r.feedback_stale_episodes),
               fmt(to_seconds(r.feedback_stale_time), 1)});
  }
  std::printf(
      "=== Ablation: transport chaos vs. bounded loss recovery ===\n%s"
      "(burst: Gilbert-Elliott ~9%% loss in ~5-packet fades; chaos adds\n"
      " 6 blackouts/min of ~800 ms, 2%% reorder, 1%% dup, 4 delay\n"
      " spikes/min on media plus 4 feedback blackouts/min of ~1.2 s;\n"
      " faulted rows run the bounded receiver: NACK budget 4 with backoff,\n"
      " 600 ms frame deadline, 64-assembly / 512-NACK caps)\n",
      t.to_string().c_str());
  return 0;
}
