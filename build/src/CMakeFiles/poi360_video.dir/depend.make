# Empty dependencies file for poi360_video.
# This may be replaced when dependencies are built.
