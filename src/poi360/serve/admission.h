#pragma once

#include <cstdint>

#include "poi360/common/time.h"
#include "poi360/common/units.h"
#include "poi360/lte/multi_user.h"
#include "poi360/lte/shared_cell.h"

namespace poi360::serve {

/// Gates session arrivals against estimated cell headroom.
///
/// Capacity accounting reuses the LTE layer's multi-user cell model: a
/// `lte::MultiUserCell` tracks the on/off background (non-POI360) uplink
/// load, and its foreground share scales the raw cell budget to what the
/// POI360 sessions can actually claim right now. Each admitted session
/// reserves its estimated demand (the configured initial rate); an arrival
/// whose demand does not fit the remaining headroom is handled by policy:
///
///  * kReject   — classic CAC: the arrival is refused and the admitted
///                sessions keep their quality.
///  * kDegrade  — graceful degradation (Pano's observation that degrading
///                admitted sessions beats dropping arrivals): the arrival is
///                admitted anyway and the serving layer nudges every active
///                POI360 session one compression mode conservative, shrinking
///                the per-session footprint instead of turning users away.
class AdmissionController {
 public:
  enum class Policy { kReject, kDegrade };
  enum class Decision { kAccept, kDegradeAccept, kReject };

  struct Config {
    Policy policy = Policy::kDegrade;
    /// Estimated uplink budget of one cell before background load (the
    /// PF scheduler's aggregate grant capacity available to media flows).
    Bitrate cell_capacity = mbps(24);
    /// Fraction of the share-scaled capacity admissions may reserve; the
    /// rest absorbs per-session burstiness above the reserved mean.
    double headroom_fraction = 0.9;
    /// Background-load accounting (same on/off UE model the LTE uplink
    /// uses); its foreground share scales `cell_capacity` over time.
    lte::MultiUserCell::Config cell{};
  };

  AdmissionController(Config config, std::uint64_t seed);

  /// Fleet mode: price admissions off a live `SharedCell` instead of the
  /// private snapshot model. Headroom becomes `cell_capacity ·
  /// prospective_share(now) · headroom_fraction` — the PF share a newly
  /// admitted UE would actually receive against the cell's committed
  /// backlogged population plus its background load. The registration *is*
  /// the accounting, so the static `admitted_demand_` reservation is not
  /// double-counted while attached. Pass nullptr to detach (the private
  /// model resumes, byte-identical to an unattached controller). The cell
  /// must outlive the controller.
  void attach_cell(lte::SharedCell* cell) { shared_cell_ = cell; }
  const lte::SharedCell* attached_cell() const { return shared_cell_; }

  /// Admission decision for an arrival reserving `demand` bits/s. Pure
  /// decision — the caller confirms with `on_admitted` once a session slot
  /// was actually acquired (a full pool can still refuse an accept).
  Decision decide(SimTime now, Bitrate demand);

  /// Reserve / release an admitted session's demand.
  void on_admitted(Bitrate demand) { admitted_demand_ += demand; }
  void on_released(Bitrate demand) {
    admitted_demand_ -= demand;
    if (admitted_demand_ < 0.0) admitted_demand_ = 0.0;
  }

  /// Capacity currently available to new admissions (can be negative under
  /// degrade-mode overload). Advances the background-load processes.
  Bitrate headroom(SimTime now);

  Bitrate admitted_demand() const { return admitted_demand_; }
  const Config& config() const { return config_; }

  std::int64_t accepted() const { return accepted_; }
  std::int64_t degrade_admissions() const { return degrade_admissions_; }
  std::int64_t rejected() const { return rejected_; }

 private:
  Config config_;
  lte::MultiUserCell cell_;
  lte::SharedCell* shared_cell_ = nullptr;
  Bitrate admitted_demand_ = 0.0;
  std::int64_t accepted_ = 0;
  std::int64_t degrade_admissions_ = 0;
  std::int64_t rejected_ = 0;
};

const char* to_string(AdmissionController::Policy policy);
const char* to_string(AdmissionController::Decision decision);

}  // namespace poi360::serve
