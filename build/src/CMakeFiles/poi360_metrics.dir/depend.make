# Empty dependencies file for poi360_metrics.
# This may be replaced when dependencies are built.
