#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

// Named-metric registry: counters, gauges, and moment histograms that
// subsystems register into instead of growing ad-hoc accumulator structs.
// Registration returns a stable reference (std::map nodes never move), so
// hot paths increment through a cached pointer and never re-hash the name.

namespace poi360::obs {

class Counter {
 public:
  void inc(std::int64_t n = 1) { value_ += n; }
  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Moment histogram: count/sum/min/max only. O(1) ingestion, exact merges,
/// no bucket-boundary tuning; enough for the delay/size distributions the
/// result tables report.
class Histogram {
 public:
  void observe(double v) {
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  void merge_from(const Histogram& other) {
    if (other.count_ == 0) return;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Counter value, or 0 when the counter was never registered — the reader
  /// used to reassemble the robustness structs.
  std::int64_t counter_value(const std::string& name) const {
    const Counter* c = find_counter(name);
    return c ? c->value() : 0;
  }
  double gauge_value(const std::string& name) const {
    const Gauge* g = find_gauge(name);
    return g ? g->value() : 0.0;
  }

  struct Entry {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "histogram"
    double value;
  };
  /// Flat, name-sorted view; histograms expand to .count/.mean/.min/.max.
  std::vector<Entry> snapshot() const;

  /// Counters add, gauges take the other side's value (last writer),
  /// histograms merge moments.
  void merge_from(const MetricsRegistry& other);

  /// Prometheus text exposition (v0.0.4) of the whole registry: counters
  /// and gauges as their native types, moment histograms as a summary
  /// (`_count`/`_sum`) plus `_min`/`_max` gauges. Metric names are
  /// `<prefix>_<name>` with every character outside [a-zA-Z0-9_:] mapped
  /// to '_'. Deterministic: map iteration is name-ordered.
  std::string prometheus_text(const std::string& prefix = "poi360") const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace poi360::obs
