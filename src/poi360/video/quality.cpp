#include "poi360/video/quality.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "poi360/video/compression.h"
#include "poi360/video/kernels.h"
#include "poi360/video/tile_grid.h"

namespace poi360::video {

Mos mos_from_psnr(double psnr_db) {
  if (psnr_db > 37.0) return Mos::kExcellent;
  if (psnr_db > 31.0) return Mos::kGood;
  if (psnr_db > 25.0) return Mos::kFair;
  if (psnr_db > 20.0) return Mos::kPoor;
  return Mos::kBad;
}

std::string to_string(Mos mos) {
  switch (mos) {
    case Mos::kBad: return "Bad";
    case Mos::kPoor: return "Poor";
    case Mos::kFair: return "Fair";
    case Mos::kGood: return "Good";
    case Mos::kExcellent: return "Excellent";
  }
  return "?";
}

double QualityModel::encode_psnr(double bpp) const {
  if (bpp <= 0.0) return floor_db;
  const double psnr =
      enc_ref_psnr_db + enc_slope_db_per_octave * std::log2(bpp / enc_ref_bpp);
  return std::clamp(psnr, floor_db, ceiling_db);
}

double QualityModel::tile_psnr(double bpp, double level) const {
  if (level < 1.0) throw std::invalid_argument("compression level < 1");
  return tile_psnr_from(encode_psnr(bpp), std::log2(level));
}

double roi_region_psnr(const QualityModel& model, const TileGrid& grid,
                       const CompressionMatrix& levels, TileIndex center,
                       double bpp) {
  // Foveation weights by Chebyshev ring: the fovea dominates, the visual
  // periphery contributes but cannot rescue a degraded center (and vice
  // versa a degraded periphery is still clearly visible).
  constexpr double kRingWeight[] = {0.55, 0.37, 0.08};
  static_assert(sizeof(kRingWeight) / sizeof(kRingWeight[0]) ==
                TileGridTables::kRings);
  // The encoder term depends only on bpp, never on the tile — hoisted out
  // of the ring scan as a single linear-MSE factor. The per-tile MSE
  //   10^(-max(floor, enc - db·log2 l)/10)
  // factors as min(floor_mse, enc_mse · factor_t), because x ↦ 10^(-x/10)
  // is monotone decreasing; factor_t and its per-(center, ring) partial
  // sums are frozen on the matrix, so a warm call is O(rings) with zero
  // transcendentals until the final log10.
  const double enc_psnr = model.encode_psnr(bpp);
  const double enc_mse = std::pow(10.0, -enc_psnr / 10.0);
  const CompressionMatrix::PsnrRings& pr = levels.psnr_rings(grid, model);
  const int c = grid.flat(center);
  double weighted_mse = 0.0;
  double total_weight = 0.0;
  for (int ring = 0; ring < TileGridTables::kRings; ++ring) {
    // Ring membership (with yaw wrap and pitch clipping) is memoized per
    // (grid, center); clipped rings keep their reduced count so the
    // per-ring mean — and thus the weight renormalization at grid edges —
    // is unchanged.
    const int ring_count = pr.tables->ring_count(c, ring);
    if (ring_count == 0) continue;
    const std::size_t slot =
        static_cast<std::size_t>(c) * TileGridTables::kRings + ring;
    double ring_mse;
    if (enc_mse * pr.ring_max[slot] <= pr.floor_mse) {
      // No tile in the ring hits the PSNR floor: the clamp is inert and the
      // whole gather collapses into one multiply by the frozen partial sum.
      ring_mse = enc_mse * pr.ring_sum[slot];
    } else {
      ring_mse = kernels::ring_mse_sum(pr.mse_factors.data(),
                                       pr.tables->ring_tiles(c, ring),
                                       ring_count, enc_mse, pr.floor_mse);
    }
    weighted_mse += kRingWeight[ring] * ring_mse / ring_count;
    total_weight += kRingWeight[ring];
  }
  const double mse = weighted_mse / total_weight;
  return -10.0 * std::log10(mse);
}

}  // namespace poi360::video
