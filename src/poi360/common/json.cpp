#include "poi360/common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace poi360::common {

namespace {

std::string type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kInt: return "int";
    case Json::Type::kDouble: return "double";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw JsonError(std::string("json: expected ") + want + ", got " +
                  type_name(got));
}

void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over the whole document string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw JsonError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not used
          // by anything this repo writes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("bad number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // Out-of-range integer: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_i64() const {
  if (type_ != Type::kInt) type_error("int", type_);
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) type_error("number", type_);
  return double_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (i >= array_.size()) throw JsonError("json: index out of range");
  return array_[i];
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

bool Json::has(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw JsonError("json: missing key \"" + key + "\"");
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}

std::int64_t Json::get_i64(const std::string& key,
                           std::int64_t fallback) const {
  return has(key) ? at(key).as_i64() : fallback;
}

std::uint64_t Json::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  return has(key) ? static_cast<std::uint64_t>(at(key).as_i64()) : fallback;
}

double Json::get_double(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_double() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth + 1),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: {
      // %.17g round-trips every finite double exactly through strtod.
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out += buf;
      // Keep the double-ness visible so a re-parse restores the same
      // storage class (17 vs 17.0).
      bool looks_int = true;
      for (const char* p = buf; *p != '\0'; ++p) {
        if (*p == '.' || *p == 'e' || *p == 'E' || *p == 'n' || *p == 'i') {
          looks_int = false;
          break;
        }
      }
      if (looks_int) out += ".0";
      break;
    }
    case Type::kString: escape_to(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        escape_to(object_[i].first, out);
        out += colon;
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace poi360::common
