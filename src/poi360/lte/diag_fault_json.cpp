#include "poi360/lte/diag_fault_json.h"

namespace poi360::lte {

using common::Json;

Json to_json(const DiagFaultConfig& c) {
  Json j = Json::object();
  j.set("enabled", c.enabled);
  j.set("loss_prob", c.loss_prob);
  j.set("stall_per_min", c.stall_per_min);
  j.set("stall_mean_duration_us", c.stall_mean_duration);
  j.set("stall_min_duration_us", c.stall_min_duration);
  j.set("delivery_jitter_us", c.delivery_jitter);
  j.set("duplicate_prob", c.duplicate_prob);
  j.set("garbage_prob", c.garbage_prob);
  j.set("handover_per_min", c.handover_per_min);
  j.set("handover_detach_mean_us", c.handover_detach_mean);
  j.set("handover_detach_min_us", c.handover_detach_min);
  j.set("handover_gain_min", c.handover_gain_min);
  j.set("handover_gain_max", c.handover_gain_max);
  j.set("handover_gain_duration_us", c.handover_gain_duration);
  return j;
}

DiagFaultConfig diag_fault_config_from_json(const Json& j) {
  DiagFaultConfig c;
  c.enabled = j.get_bool("enabled", c.enabled);
  c.loss_prob = j.get_double("loss_prob", c.loss_prob);
  c.stall_per_min = j.get_double("stall_per_min", c.stall_per_min);
  c.stall_mean_duration =
      j.get_i64("stall_mean_duration_us", c.stall_mean_duration);
  c.stall_min_duration =
      j.get_i64("stall_min_duration_us", c.stall_min_duration);
  c.delivery_jitter = j.get_i64("delivery_jitter_us", c.delivery_jitter);
  c.duplicate_prob = j.get_double("duplicate_prob", c.duplicate_prob);
  c.garbage_prob = j.get_double("garbage_prob", c.garbage_prob);
  c.handover_per_min = j.get_double("handover_per_min", c.handover_per_min);
  c.handover_detach_mean =
      j.get_i64("handover_detach_mean_us", c.handover_detach_mean);
  c.handover_detach_min =
      j.get_i64("handover_detach_min_us", c.handover_detach_min);
  c.handover_gain_min = j.get_double("handover_gain_min", c.handover_gain_min);
  c.handover_gain_max = j.get_double("handover_gain_max", c.handover_gain_max);
  c.handover_gain_duration =
      j.get_i64("handover_gain_duration_us", c.handover_gain_duration);
  return c;
}

}  // namespace poi360::lte
