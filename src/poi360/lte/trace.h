#pragma once

#include <memory>
#include <string>
#include <vector>

#include "poi360/common/time.h"
#include "poi360/common/units.h"

namespace poi360::lte {

class UplinkChannel;

/// Recorded per-subframe uplink capacity trace.
///
/// Lets experiments replay a fixed channel realization — a capacity series
/// recorded from the stochastic channel model, a hand-crafted scenario
/// (step drops, ramps), or an imported field measurement — so that every
/// algorithm under comparison faces *exactly* the same network. Replay
/// loops when the trace is shorter than the session.
class CapacityTrace {
 public:
  /// Appends a sample; times must be strictly increasing from 0.
  void add(SimTime t, Bitrate capacity_bps);

  /// Step-interpolated capacity at `t`; replay wraps around the trace
  /// duration. Throws if the trace is empty.
  Bitrate at(SimTime t) const;

  bool empty() const { return times_.empty(); }
  std::size_t size() const { return times_.size(); }
  /// Wrap-around period: the last sample time plus one nominal step.
  SimDuration duration() const;

  /// Records `duration` of an UplinkChannel at `step` granularity.
  static CapacityTrace record(UplinkChannel& channel, SimDuration duration,
                              SimDuration step = msec(1));

  /// CSV round-trip ("time_us,capacity_bps" rows).
  std::string to_csv() const;
  static CapacityTrace from_csv(const std::string& csv);

 private:
  std::vector<SimTime> times_;
  std::vector<Bitrate> capacities_;
};

}  // namespace poi360::lte
