#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "poi360/common/ring_buffer.h"
#include "poi360/common/rng.h"
#include "poi360/common/time.h"
#include "poi360/common/units.h"
#include "poi360/lte/channel.h"
#include "poi360/lte/diag.h"
#include "poi360/lte/shared_cell.h"
#include "poi360/lte/tbs.h"
#include "poi360/obs/trace.h"
#include "poi360/sim/simulator.h"

namespace poi360::lte {

/// Uplink scheduling and modem-buffer parameters.
struct UplinkConfig {
  /// Slope of the proportional-fair grant curve: the eNodeB serves a UE at
  /// R_phy = min(capacity, k · B_reported)  [bits/s per byte of backlog].
  /// 540 reproduces Fig. 5: saturation (~5.5 Mbps) near a 10 kB buffer.
  double grant_bps_per_byte = 540.0;

  /// Buffer-status-report latency: the grant at time t reflects the buffer
  /// level at t - bsr_delay (SR/BSR + scheduling round trip).
  SimDuration bsr_delay = msec(8);

  /// Probability a subframe's transport block is not granted/decoded; the
  /// HARQ retransmission shows up as the grant simply not draining bytes.
  double bler = 0.03;

  /// The PF scheduler time-multiplexes UEs: this UE receives a grant every
  /// `grant_period` subframes, sized for the whole period. Service is
  /// therefore bursty at millisecond scale, which (together with the grant
  /// surges below) is what lets a buffer run dry under naive rate control
  /// (Fig. 6).
  int grant_period = 4;

  /// Occasionally competing users go idle and the scheduler showers this UE
  /// with PRBs: the grant-curve slope k multiplies by `surge_gain` for a
  /// short burst — the paper's "temporary uplink bandwidth surge" (§3.3).
  SimDuration surge_mean_interval = msec(1500);
  SimDuration surge_mean_duration = msec(250);
  double surge_gain = 4.0;

  /// The opposite also happens: bursts of competing traffic starve this UE
  /// of PRBs for a while. Famines inflate the firmware buffer into the
  /// 20-50 kB range seen in the paper's Fig. 5/6, which is what end-to-end
  /// delay-gradient controllers (GCC) react to — and over-react to, causing
  /// the underutilization FBCC fixes.
  SimDuration famine_mean_interval = msec(7000);
  SimDuration famine_mean_duration = msec(400);
  double famine_gain = 0.3;

  /// Firmware buffer capacity (drop-tail beyond this).
  std::int64_t buffer_limit_bytes = 3'000'000;

  /// Diagnostic report period (MobileInsight cadence, §5).
  SimDuration diag_interval = msec(40);

  SimDuration subframe = msec(1);
};

/// The cellular uplink as seen from the device: a firmware (modem) buffer
/// drained by per-subframe grants from the base station's proportional-fair
/// scheduler.
///
/// This is the substrate both POI360 findings rest on: the service rate
/// depends on the buffer's own occupancy (Fig. 5), so an empty buffer earns
/// no grants (the underutilization of §3.3) and a deep buffer earns nothing
/// extra but queueing delay (the congestion FBCC detects).
///
/// `T` is the packet type (must expose an `std::int64_t bytes` member).
/// Fully drained packets are handed to `sink` at the draining subframe; the
/// caller appends core-network delay behind it.
template <typename T>
class LteUplink {
 public:
  using Sink = std::function<void(T, SimTime)>;
  using DiagSink = std::function<void(const DiagReport&)>;
  /// (time, buffer_bytes_before_grant, tbs_bytes) once per subframe.
  using SubframeProbe =
      std::function<void(SimTime, std::int64_t, std::int64_t)>;

  LteUplink(sim::Simulator& simulator, ChannelConfig channel_config,
            UplinkConfig config, std::uint64_t seed, Sink sink)
      : sim_(simulator),
        config_(config),
        channel_(channel_config, seed),
        rng_(Rng(seed).fork(0x1f7)),
        sink_(std::move(sink)),
        bsr_history_(static_cast<std::size_t>(
            std::max<SimDuration>(1, config.bsr_delay / config.subframe))) {}

  /// Begins the subframe and diagnostic schedules. Call once.
  void start() {
    next_surge_at_ = sim_.now() + sec_f(rng_.exponential(to_seconds(
                                       config_.surge_mean_interval)));
    next_famine_at_ = sim_.now() + sec_f(rng_.exponential(to_seconds(
                                        config_.famine_mean_interval)));
    sim_.schedule_periodic(sim_.now() + config_.subframe, config_.subframe,
                           [this]() { on_subframe(); });
    last_diag_time_ = sim_.now();
    sim_.schedule_periodic(sim_.now() + config_.diag_interval,
                           config_.diag_interval, [this]() { on_diag(); });
  }

  /// Enqueues a packet into the firmware buffer (drop-tail).
  void push(T packet) {
    if (buffer_bytes_ + packet.bytes > config_.buffer_limit_bytes) {
      ++dropped_;
      return;
    }
    buffer_bytes_ += packet.bytes;
    queue_.emplace_back(std::move(packet), 0);
    queue_.back().second = queue_.back().first.bytes;
  }

  std::int64_t buffer_bytes() const { return buffer_bytes_; }
  std::int64_t dropped() const { return dropped_; }
  std::int64_t total_tbs_bytes() const { return total_tbs_bytes_; }

  /// Discards everything queued in the firmware buffer (counted as drops).
  /// Real modems do this on RRC re-establishment: the old cell's pending
  /// transport blocks never make it across a handover.
  void flush_buffer() {
    dropped_ += static_cast<std::int64_t>(queue_.size());
    queue_.clear();
    buffer_bytes_ = 0;
  }

  /// Cell change: the firmware buffer is flushed, the UE earns no grants
  /// while detached, and after re-attach the new cell's grant slope and
  /// capacity are scaled by `post_gain` for `post_duration` (the new cell
  /// may be better or worse than the old one).
  void begin_handover(SimDuration detach, double post_gain,
                      SimDuration post_duration) {
    const SimTime now = sim_.now();
    flush_buffer();
    detached_until_ = now + std::max<SimDuration>(0, detach);
    handover_gain_ = post_gain;
    handover_gain_until_ =
        detached_until_ + std::max<SimDuration>(0, post_duration);
    if (trace_) {
      trace_->instant(now, "lte", "handover",
                      {{"detach_ms", to_millis(detach)},
                       {"gain", post_gain},
                       {"gain_ms", to_millis(post_duration)}});
    }
  }

  bool detached() const { return sim_.now() < detached_until_; }

  void set_diag_sink(DiagSink sink) { diag_sink_ = std::move(sink); }
  void set_subframe_probe(SubframeProbe probe) { probe_ = std::move(probe); }

  /// Attaches this UE to a shared cell: each subframe it reports its
  /// firmware-buffer backlog as demand and the channel capacity is scaled
  /// by the cell's proportional-fair share for this UE. Unattached (the
  /// default) the private channel model owns the competition and nothing
  /// changes — no extra RNG draws, byte-identical runs.
  void set_cell(CellHandle cell) { cell_ = cell; }

  /// PHY fault/condition tracing: surge and famine windows become "b"/"e"
  /// spans on the "lte" track, handovers become instants. nullptr = off.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  const UplinkChannel& channel() const { return channel_; }
  const UplinkConfig& config() const { return config_; }

 private:
  void on_subframe() {
    const SimTime now = sim_.now();
    Bitrate capacity = channel_.advance(now);
    if (cell_.attached()) {
      cell_.report_backlog(buffer_bytes_);
      capacity *= cell_.share(now);
    }

    // The scheduler sees the stale buffer level from the BSR round trip.
    const std::int64_t reported =
        bsr_history_.full() ? bsr_history_.front() : 0;
    bsr_history_.push(buffer_bytes_);

    // Grant-slope surge and famine processes (random telegraphs).
    if (surging_ && now >= surge_until_) {
      surging_ = false;
      if (trace_) trace_->span_end(now, "lte", "surge", 0);
    }
    if (!surging_ && now >= next_surge_at_) {
      surging_ = true;
      surge_until_ =
          now + std::max<SimDuration>(
                    msec(20), sec_f(rng_.exponential(to_seconds(
                                  config_.surge_mean_duration))));
      next_surge_at_ =
          surge_until_ + std::max<SimDuration>(
                             msec(100), sec_f(rng_.exponential(to_seconds(
                                            config_.surge_mean_interval))));
      if (trace_) {
        trace_->span_begin(now, "lte", "surge", 0,
                           {{"gain", config_.surge_gain}});
      }
    }
    if (famine_ && now >= famine_until_) {
      famine_ = false;
      if (trace_) trace_->span_end(now, "lte", "famine", 0);
    }
    if (!famine_ && now >= next_famine_at_) {
      famine_ = true;
      famine_until_ =
          now + std::max<SimDuration>(
                    msec(30), sec_f(rng_.exponential(to_seconds(
                                  config_.famine_mean_duration))));
      next_famine_at_ =
          famine_until_ + std::max<SimDuration>(
                              msec(150), sec_f(rng_.exponential(to_seconds(
                                             config_.famine_mean_interval))));
      if (trace_) {
        trace_->span_begin(now, "lte", "famine", 0,
                           {{"gain", config_.famine_gain}});
      }
    }

    // Time-multiplexed scheduling: one grant per period, period-sized.
    ++subframe_index_;
    const int period = std::max(1, config_.grant_period);
    const std::int64_t before = buffer_bytes_;
    if (subframe_index_ % period != 0 || now < detached_until_) {
      if (probe_) probe_(now, before, 0);
      return;
    }

    double k = config_.grant_bps_per_byte;
    double cap = capacity;
    if (now < handover_gain_until_) {
      k *= handover_gain_;
      cap *= handover_gain_;
    }
    if (surging_) k *= config_.surge_gain;
    if (famine_) {
      // PRB starvation hits both the slope and the ceiling: no matter how
      // much backlog the BSR advertises, the competing burst owns the PRBs.
      k *= config_.famine_gain;
      cap *= config_.famine_gain;
    }
    const double grant_bps = std::min(cap, k * static_cast<double>(reported));
    const std::int64_t grant_bytes = static_cast<std::int64_t>(
        grant_bps * to_seconds(config_.subframe) / 8.0 * period);

    std::int64_t tbs = quantizer_.quantize(grant_bytes);

    // HARQ: a failed transport block drains nothing this subframe.
    if (tbs > 0 && rng_.bernoulli(config_.bler)) tbs = 0;

    std::int64_t budget = std::min(tbs, buffer_bytes_);
    const std::int64_t drained = budget;
    while (budget > 0 && !queue_.empty()) {
      auto& [packet, remaining] = queue_.front();
      const std::int64_t take = std::min(budget, remaining);
      remaining -= take;
      budget -= take;
      buffer_bytes_ -= take;
      if (remaining == 0) {
        T done = std::move(packet);
        queue_.pop_front();
        sink_(std::move(done), now);
      }
    }

    tbs_since_diag_ += drained;
    total_tbs_bytes_ += drained;
    if (probe_) probe_(now, before, drained);
  }

  void on_diag() {
    if (!diag_sink_) {
      tbs_since_diag_ = 0;
      last_diag_time_ = sim_.now();
      return;
    }
    DiagReport report{
        .time = sim_.now(),
        .buffer_bytes = buffer_bytes_,
        .tbs_bytes = tbs_since_diag_,
        .interval = sim_.now() - last_diag_time_,
    };
    tbs_since_diag_ = 0;
    last_diag_time_ = sim_.now();
    diag_sink_(report);
  }

  sim::Simulator& sim_;
  UplinkConfig config_;
  UplinkChannel channel_;
  CellHandle cell_;
  Rng rng_;
  Sink sink_;
  DiagSink diag_sink_;
  SubframeProbe probe_;
  TbsQuantizer quantizer_;

  std::deque<std::pair<T, std::int64_t>> queue_;  // (packet, bytes left)
  std::int64_t buffer_bytes_ = 0;
  std::int64_t dropped_ = 0;

  RingBuffer<std::int64_t> bsr_history_;
  std::int64_t subframe_index_ = 0;
  bool surging_ = false;
  SimTime surge_until_ = 0;
  SimTime next_surge_at_ = 0;
  bool famine_ = false;
  SimTime famine_until_ = 0;
  SimTime next_famine_at_ = 0;
  SimTime detached_until_ = 0;
  double handover_gain_ = 1.0;
  SimTime handover_gain_until_ = 0;
  std::int64_t tbs_since_diag_ = 0;
  std::int64_t total_tbs_bytes_ = 0;
  SimTime last_diag_time_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace poi360::lte
