file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_stepdrop.dir/bench_trace_stepdrop.cpp.o"
  "CMakeFiles/bench_trace_stepdrop.dir/bench_trace_stepdrop.cpp.o.d"
  "bench_trace_stepdrop"
  "bench_trace_stepdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_stepdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
