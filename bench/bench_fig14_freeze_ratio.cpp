// Reproduces paper Fig. 14: video freeze ratio (frames delayed > 600 ms,
// plus frames the sender had to skip) for each compression scheme over
// wireline and cellular.
//
// Paper shapes to check: everything < 2% over wireline (POI360 lowest at
// ~0.6%); over cellular Conduit and Pyramid fail with 8-17% while POI360
// stays below ~3%.

#include <cstdio>

#include "poi360/common/table.h"
#include "util/experiment.h"

using namespace poi360;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  constexpr int kRuns = 10;
  const core::CompressionScheme schemes[] = {
      core::CompressionScheme::kPoi360, core::CompressionScheme::kConduit,
      core::CompressionScheme::kPyramid};
  const core::NetworkType networks[] = {core::NetworkType::kWireline,
                                        core::NetworkType::kCellular};

  Table t({"network", "scheme", "freeze ratio", "displayed", "skipped"});
  for (auto network : networks) {
    for (auto scheme : schemes) {
      const auto merged = bench::run_merged(
          bench::micro_config(scheme, network), kRuns);
      t.add_row({core::to_string(network), core::to_string(scheme),
                 fmt_pct(merged.freeze_ratio()),
                 std::to_string(merged.displayed_frames()),
                 std::to_string(merged.skipped_frames())});
    }
  }
  std::printf("=== Fig. 14: video freeze ratio ===\n%s",
              t.to_string().c_str());
  return 0;
}
