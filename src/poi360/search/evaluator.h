#pragma once

#include <cstdint>
#include <vector>

#include "poi360/runner/batch_runner.h"
#include "poi360/search/chaos_spec.h"
#include "poi360/search/outcome.h"

// The strategies' only window onto the simulator: hand a batch of specs in,
// get grid-ordered outcomes back. Batches run through BatchRunner, whose
// results are always in submission order regardless of worker count — so a
// strategy that makes every decision *after* its batch returns is
// automatically byte-identical across --jobs values. Strategies should
// batch as wide as their logic allows (a bisection probes one point at a
// time; mutation rounds evaluate a whole generation at once).

namespace poi360::search {

class Evaluator {
 public:
  struct Options {
    int jobs = 0;  // BatchRunner worker count; 0 = auto
  };

  Evaluator() = default;
  explicit Evaluator(Options options) : options_(options) {}

  /// Runs each spec as one session under the given rate control; outcomes
  /// come back in spec order. Throws std::runtime_error when a session
  /// fails (a search must not silently treat a crash as a QoE point —
  /// crashes are *better* than cliffs and deserve a loud exit).
  std::vector<QoeOutcome> evaluate(const std::vector<ChaosSpec>& specs,
                                   core::RateControl rate_control);

  /// Paired FBCC/GCC evaluation of each spec — same seed, same fault
  /// schedule, only the controller differs (the paper's paired-comparison
  /// protocol). Outcomes in spec order.
  struct Paired {
    QoeOutcome fbcc;
    QoeOutcome gcc;
  };
  std::vector<Paired> evaluate_paired(const std::vector<ChaosSpec>& specs);

  /// Sessions executed so far — the campaign budget currency.
  int sessions_run() const { return sessions_run_; }

 private:
  std::vector<QoeOutcome> run_batch(std::vector<runner::RunSpec> runs);

  Options options_{};
  int sessions_run_ = 0;
};

}  // namespace poi360::search
