// Ablation: FBCC's congestion-detector strictness K (Eq. 3 requires K
// consecutive increasing firmware-buffer reports before declaring J = 1;
// the paper uses K = 10 with 40 ms reports, i.e. ~400 ms detection time).
//
// Smaller K reacts faster but fires on noise (spurious bitrate cuts lower
// quality); larger K waits longer, letting queues grow (more freezes).

#include <cstdio>

#include "poi360/common/table.h"
#include "util/experiment.h"

using namespace poi360;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const std::vector<int> ks = {3, 5, 10, 15, 25};

  runner::ExperimentSpec spec(
      bench::transport_config(core::RateControl::kFbcc, sec(150)));
  spec.name("ablation_fbcc_k")
      .sweep("K", ks,
             [](core::SessionConfig& c, int k) { c.fbcc.detector.k = k; })
      .repeats(4);
  const auto batch = bench::run(spec);

  Table t({"K", "detect time (ms)", "freeze ratio", "mean PSNR (dB)",
           "thpt (Mbps)", "thpt std"});
  const SimDuration diag_interval = spec.base().uplink.diag_interval;
  for (int k : ks) {
    const auto merged = batch.merged({{"K", std::to_string(k)}});
    t.add_row({std::to_string(k), fmt(k * to_millis(diag_interval), 0),
               fmt_pct(merged.freeze_ratio()), fmt(merged.mean_roi_psnr(), 1),
               fmt(to_mbps(merged.mean_throughput()), 2),
               fmt(to_mbps(merged.std_throughput()), 2)});
  }
  std::printf("=== Ablation: FBCC detector K (paper: K = 10) ===\n%s",
              t.to_string().c_str());
  return 0;
}
