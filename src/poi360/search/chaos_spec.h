#pragma once

#include <cstdint>

#include "poi360/common/json.h"
#include "poi360/core/config.h"
#include "poi360/serve/fleet_driver.h"
#include "poi360/serve/soak_driver.h"

// One point of the joint chaos parameter space: everything a scenario-search
// strategy may vary, in one serializable value. A (ChaosSpec, rate control)
// pair fully determines a session — apply() stamps the fault configs, the
// traffic/motion knobs, the seed and the duration onto a SessionConfig, and
// the JSON round trip is lossless — so every point the search visits can be
// written down, committed to the corpus, and replayed bit-for-bit later.

namespace poi360::search {

/// Cross-traffic / channel conditions (the §6.2 field-condition knobs the
/// search is allowed to move).
struct TrafficSpec {
  double rss_dbm = -73.0;
  double mean_cell_load = 0.15;
  double load_std = 0.08;
  double speed_mph = 0.0;

  common::Json to_json() const;
  static TrafficSpec from_json(const common::Json& j);
};

/// Viewer-motion intensity knobs (subset of roi::HeadMotionParams that
/// shapes ROI churn; the rest stay at the calibrated defaults).
struct MotionSpec {
  double mean_fixation_s = 0.8;
  double peak_velocity_deg_s = 120.0;
  double large_shift_prob = 0.12;
  double pursuit_prob = 0.5;

  common::Json to_json() const;
  static MotionSpec from_json(const common::Json& j);
};

/// Receiver-side bounded-recovery knobs. The default is the *hardened*
/// receiver (finite NACK budget with backoff, 600 ms abandonment deadline)
/// rather than the legacy unbounded one: the abandon -> PLI and NACK
/// give-up recovery paths are part of the behaviour space the search is
/// meant to cover, and they are unreachable with the preset defaults.
struct RecoverySpec {
  int nack_retry_budget = 4;
  bool nack_backoff = true;
  double frame_deadline_ms = 600.0;
  std::int64_t max_assemblies = 256;
  std::int64_t max_outstanding_nacks = 4096;

  common::Json to_json() const;
  static RecoverySpec from_json(const common::Json& j);
};

/// The full search point. Sub-configs reuse the fault models' own types so
/// a spec can express anything the injectors can do.
struct ChaosSpec {
  std::uint64_t seed = 1000;  // runner::kDefaultSeed0
  double duration_s = 30.0;

  lte::DiagFaultConfig diag{};     // modem diag-feed faults (PR 1)
  net::ChaosConfig media{};        // media-path transport faults (PR 4)
  net::ChaosConfig feedback{};     // feedback/NACK-path transport faults
  TrafficSpec traffic{};
  MotionSpec motion{};
  RecoverySpec recovery{};

  /// Stamps every knob (plus seed and duration) onto `config`, leaving the
  /// unrelated fields untouched — callers pick the base preset and the rate
  /// control under test.
  void apply(core::SessionConfig& config) const;

  /// presets::cellular_static() + apply() + the given rate control: the
  /// canonical single-session realization of this spec.
  core::SessionConfig session(core::RateControl rate_control) const;

  /// Serving-layer targets: stamps the spec onto the driver's per-session
  /// template (and its top-level seed), so soak/fleet campaigns can search
  /// the same space.
  void apply(serve::SoakConfig& config) const;
  void apply(serve::FleetConfig& config) const;

  common::Json to_json() const;
  static ChaosSpec from_json(const common::Json& j);
};

}  // namespace poi360::search
