#pragma once

#include <string>
#include <vector>

#include "poi360/obs/trace.h"

// Exporters for TraceRecorder contents.
//
// Chrome trace_event JSON: frame-lifecycle spans become async "b"/"e" pairs
// keyed by (category, id), so Perfetto / chrome://tracing / ui.perfetto.dev
// draws one nested track per category with the frame id as the correlation
// key. Instants become "i" events. Sim time is integer microseconds, which
// is exactly the trace_event "ts" unit — timestamps pass through untouched.
//
// CSV: one row per event, args flattened to `key=value` pairs — the grep-
// and pandas-friendly form for batch post-processing.

namespace poi360::obs {

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            const std::string& process_name,
                            std::uint64_t dropped = 0);
std::string to_chrome_trace(const TraceRecorder& recorder,
                            const std::string& process_name);

std::string to_trace_csv(const std::vector<TraceEvent>& events);
std::string to_trace_csv(const TraceRecorder& recorder);

/// Header matching to_trace_csv rows.
std::string trace_csv_header();

void write_chrome_trace(const std::string& path, const TraceRecorder& recorder,
                        const std::string& process_name);
void write_trace_csv(const std::string& path, const TraceRecorder& recorder);

}  // namespace poi360::obs
