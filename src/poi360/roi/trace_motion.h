#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "poi360/roi/head_motion.h"

namespace poi360::roi {

/// Head-motion trace: replay a recorded viewer (e.g. an exported HMD sensor
/// log or a trajectory captured from the stochastic model) so that every
/// algorithm under comparison faces the *same* viewer. The counterpart of
/// lte::CapacityTrace on the human side of the loop.
class MotionTrace : public HeadMotionModel {
 public:
  /// Samples must have strictly increasing timestamps starting at 0.
  void add(SimTime t, Orientation orientation);

  bool empty() const { return times_.empty(); }
  std::size_t size() const { return times_.size(); }

  /// Linear interpolation between samples (shortest-path in yaw); clamps at
  /// the ends. Throws when empty. Const (a trace is pure recorded data), so
  /// one trace can be read concurrently by every run of a parallel grid.
  Orientation orientation_at(SimTime t) const;
  Orientation orientation_at(SimTime t) override {
    return std::as_const(*this).orientation_at(t);
  }

  /// Records `duration` of another model at `step` granularity.
  static MotionTrace record(HeadMotionModel& model, SimDuration duration,
                            SimDuration step = msec(10));

  /// CSV round-trip ("time_us,yaw_deg,pitch_deg" rows).
  std::string to_csv() const;
  static MotionTrace from_csv(const std::string& csv);

 private:
  std::vector<SimTime> times_;
  std::vector<Orientation> orientations_;
};

/// Replays a shared immutable trace through the HeadMotionModel interface
/// without copying it: the sessions of a parallel sweep all hold the same
/// `shared_ptr<const MotionTrace>` and only ever call the const accessor.
class MotionTraceView : public HeadMotionModel {
 public:
  explicit MotionTraceView(std::shared_ptr<const MotionTrace> trace)
      : trace_(std::move(trace)) {}

  Orientation orientation_at(SimTime t) override {
    return trace_->orientation_at(t);
  }

 private:
  std::shared_ptr<const MotionTrace> trace_;
};

}  // namespace poi360::roi
