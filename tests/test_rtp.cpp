#include <gtest/gtest.h>

#include <vector>

#include "poi360/rtp/pacer.h"
#include "poi360/rtp/packetizer.h"
#include "poi360/rtp/receiver.h"
#include "poi360/rtp/retx.h"
#include "poi360/sim/simulator.h"

namespace poi360::rtp {
namespace {

TEST(Packetizer, SplitsAtMtu) {
  Packetizer p(1200);
  const auto packets = p.packetize(7, msec(100), 3000);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].bytes, 1200);
  EXPECT_EQ(packets[1].bytes, 1200);
  EXPECT_EQ(packets[2].bytes, 600);
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(packets[f].frame_id, 7);
    EXPECT_EQ(packets[f].fragment, f);
    EXPECT_EQ(packets[f].fragments, 3);
    EXPECT_EQ(packets[f].capture_time, msec(100));
    EXPECT_EQ(packets[f].seq, f);
  }
}

TEST(Packetizer, SequenceNumbersContinueAcrossFrames) {
  Packetizer p(1000);
  (void)p.packetize(0, 0, 2500);  // 3 packets: seq 0..2
  const auto second = p.packetize(1, 0, 1500);
  EXPECT_EQ(second[0].seq, 3);
  EXPECT_EQ(second[1].seq, 4);
}

TEST(Packetizer, ExactMultipleOfMtu) {
  Packetizer p(1200);
  const auto packets = p.packetize(0, 0, 2400);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[1].bytes, 1200);
}

TEST(Packetizer, RejectsEmptyFrames) {
  Packetizer p(1200);
  EXPECT_THROW(p.packetize(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(Packetizer(0), std::invalid_argument);
}

TEST(Pacer, ReleasesAtConfiguredRate) {
  sim::Simulator s;
  std::vector<SimTime> sent;
  Pacer pacer(s, mbps(1), [&](RtpPacket p) { sent.push_back(p.send_time); });
  pacer.start();
  s.schedule_at(0, [&]() {
    for (int i = 0; i < 10; ++i) {
      RtpPacket p;
      p.seq = i;
      p.bytes = 1250;  // 10 ms at 1 Mbps
      pacer.enqueue(p);
    }
  });
  s.run_until(sec(1));
  ASSERT_EQ(sent.size(), 10u);
  // 10 packets of 10 ms each paced over ~100 ms (5 ms tick granularity).
  EXPECT_GE(sent.back() - sent.front(), msec(80));
  EXPECT_LE(sent.back(), msec(150));
}

TEST(Pacer, QueueJumpsRetransmissions) {
  sim::Simulator s;
  std::vector<std::int64_t> order;
  Pacer pacer(s, kbps(100), [&](RtpPacket p) { order.push_back(p.seq); });
  pacer.start();
  s.schedule_at(0, [&]() {
    for (int i = 0; i < 3; ++i) {
      RtpPacket p;
      p.seq = i;
      p.bytes = 1000;
      pacer.enqueue(p);
    }
    RtpPacket rtx;
    rtx.seq = 99;
    rtx.bytes = 500;
    rtx.is_retransmission = true;
    pacer.enqueue_front(rtx);
  });
  s.run_until(sec(60));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 99);
}

TEST(Pacer, RateChangeTakesEffect) {
  sim::Simulator s;
  int sent = 0;
  Pacer pacer(s, kbps(8), [&](RtpPacket) { ++sent; });  // 1000 B/s
  pacer.start();
  s.schedule_at(0, [&]() {
    for (int i = 0; i < 100; ++i) {
      RtpPacket p;
      p.bytes = 1000;
      pacer.enqueue(p);
    }
  });
  s.run_until(sec(2));
  const int slow = sent;
  EXPECT_LE(slow, 4);
  s.schedule_at(sec(2), [&]() { pacer.set_rate(mbps(8)); });
  s.run_until(sec(3));
  EXPECT_EQ(sent, 100);  // drained quickly after the raise
}

TEST(Pacer, TracksQueuedBytes) {
  sim::Simulator s;
  Pacer pacer(s, kbps(8), [](RtpPacket) {});
  RtpPacket p;
  p.bytes = 700;
  pacer.enqueue(p);
  pacer.enqueue(p);
  EXPECT_EQ(pacer.queued_bytes(), 1400);
  EXPECT_EQ(pacer.queued_packets(), 2u);
}

TEST(Pacer, IdleDoesNotBankUnboundedCredit) {
  sim::Simulator s;
  std::vector<SimTime> sent;
  Pacer pacer(s, mbps(1), [&](RtpPacket p) { sent.push_back(p.send_time); });
  pacer.start();
  // One second of idle, then a large burst: the burst must still be paced.
  s.schedule_at(sec(1), [&]() {
    for (int i = 0; i < 20; ++i) {
      RtpPacket p;
      p.bytes = 1250;
      pacer.enqueue(p);
    }
  });
  s.run_until(sec(3));
  ASSERT_EQ(sent.size(), 20u);
  EXPECT_GE(sent.back() - sent.front(), msec(150));
}

// ----------------------------------------------------------------- retx --

TEST(SentPacketCache, LookupAndEviction) {
  SentPacketCache cache(3);
  for (int i = 0; i < 5; ++i) {
    RtpPacket p;
    p.seq = i;
    p.bytes = 100 + i;
    cache.insert(p);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.lookup(0).has_value());
  EXPECT_FALSE(cache.lookup(1).has_value());
  ASSERT_TRUE(cache.lookup(4).has_value());
  EXPECT_EQ(cache.lookup(4)->bytes, 104);
}

TEST(SentPacketCache, DuplicateSeqUpdatesInPlaceWithoutEviction) {
  // Re-inserting a seq (pacer resending a retransmission) must not grow the
  // eviction order: the old bookkeeping double-counted the seq and evicted
  // live entries early.
  SentPacketCache cache(3);
  RtpPacket p;
  p.seq = 0;
  p.bytes = 100;
  cache.insert(p);
  p.bytes = 999;  // same seq, refreshed payload
  cache.insert(p);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.lookup(0).has_value());
  EXPECT_EQ(cache.lookup(0)->bytes, 999);

  for (int i = 1; i <= 2; ++i) {
    RtpPacket q;
    q.seq = i;
    q.bytes = 100 + i;
    cache.insert(q);
  }
  // Exactly at capacity: every seq must still be resident. With the old
  // duplicate handling, seq 0 occupied two order slots and seq 0 and 1 were
  // evicted here.
  EXPECT_EQ(cache.size(), 3u);
  for (int i = 0; i <= 2; ++i) {
    EXPECT_TRUE(cache.lookup(i).has_value()) << "seq " << i;
  }
  RtpPacket q;
  q.seq = 3;
  q.bytes = 103;
  cache.insert(q);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.lookup(0).has_value());  // true FIFO eviction
  EXPECT_TRUE(cache.lookup(3).has_value());
}

// ------------------------------------------------------------- receiver --

struct ReceiverHarness {
  sim::Simulator s;
  std::vector<RtpReceiver::CompletedFrame> frames;
  std::vector<std::int64_t> nacked;
  RtpReceiver receiver{
      s,
      [this](const RtpReceiver::CompletedFrame& f) { frames.push_back(f); },
      [this](const std::vector<std::int64_t>& seqs) {
        nacked.insert(nacked.end(), seqs.begin(), seqs.end());
      }};
};

TEST(Receiver, AssemblesFrameFromFragments) {
  ReceiverHarness h;
  Packetizer p(1000);
  const auto packets = p.packetize(5, msec(10), 2500);
  SimTime t = msec(50);
  for (auto packet : packets) {
    packet.send_time = msec(40);
    h.receiver.on_packet(packet, t);
    t += msec(3);
  }
  ASSERT_EQ(h.frames.size(), 1u);
  EXPECT_EQ(h.frames[0].frame_id, 5);
  EXPECT_EQ(h.frames[0].bytes, 2500);
  EXPECT_EQ(h.frames[0].capture_time, msec(10));
  EXPECT_EQ(h.frames[0].first_arrival, msec(50));
  EXPECT_EQ(h.frames[0].completion, msec(56));
  EXPECT_EQ(h.frames[0].fragments, 3);
  EXPECT_TRUE(h.nacked.empty());
}

TEST(Receiver, DetectsGapAndNacks) {
  ReceiverHarness h;
  Packetizer p(1000);
  const auto packets = p.packetize(0, 0, 3000);  // seq 0,1,2
  h.receiver.on_packet(packets[0], msec(1));
  h.receiver.on_packet(packets[2], msec(2));  // seq 1 missing
  ASSERT_EQ(h.nacked.size(), 1u);
  EXPECT_EQ(h.nacked[0], 1);
  EXPECT_TRUE(h.frames.empty());
  // Retransmission completes the frame.
  auto rtx = packets[1];
  rtx.is_retransmission = true;
  h.receiver.on_packet(rtx, msec(30));
  ASSERT_EQ(h.frames.size(), 1u);
  EXPECT_TRUE(h.frames[0].had_loss);
  EXPECT_EQ(h.frames[0].completion, msec(30));
}

TEST(Receiver, DuplicatePacketsIgnored) {
  ReceiverHarness h;
  Packetizer p(1000);
  const auto packets = p.packetize(0, 0, 2000);
  h.receiver.on_packet(packets[0], msec(1));
  h.receiver.on_packet(packets[0], msec(2));  // duplicate
  EXPECT_TRUE(h.frames.empty());
  h.receiver.on_packet(packets[1], msec(3));
  ASSERT_EQ(h.frames.size(), 1u);
  EXPECT_EQ(h.frames[0].bytes, 2000);
}

TEST(Receiver, LossFractionInterval) {
  ReceiverHarness h;
  Packetizer p(1000);
  const auto a = p.packetize(0, 0, 1000);  // seq 0
  const auto b = p.packetize(1, 0, 1000);  // seq 1
  const auto c = p.packetize(2, 0, 1000);  // seq 2
  h.receiver.on_packet(a[0], msec(1));
  h.receiver.on_packet(c[0], msec(2));  // seq 1 lost
  EXPECT_NEAR(h.receiver.take_loss_fraction(), 1.0 / 3.0, 1e-9);
  // Counters reset after the call.
  EXPECT_DOUBLE_EQ(h.receiver.take_loss_fraction(), 0.0);
  (void)b;
}

TEST(Receiver, NackRetryFiresPeriodically) {
  ReceiverHarness h;
  h.receiver.start();
  Packetizer p(1000);
  const auto packets = p.packetize(0, 0, 3000);
  h.s.schedule_at(msec(1), [&]() {
    h.receiver.on_packet(packets[0], msec(1));
    h.receiver.on_packet(packets[2], msec(1));  // gap at seq 1
  });
  h.s.run_until(msec(350));
  // Initial NACK plus ~3 retries at 100 ms cadence.
  EXPECT_GE(h.nacked.size(), 3u);
  for (auto seq : h.nacked) EXPECT_EQ(seq, 1);
}

TEST(Receiver, IncomingRateNeedsFullWindow) {
  ReceiverHarness h;
  Packetizer p(1000);
  auto pkt = p.packetize(0, 0, 1000)[0];
  h.receiver.on_packet(pkt, msec(10));
  EXPECT_DOUBLE_EQ(h.receiver.incoming_rate(msec(500)), 0.0);
}

// ------------------------------------------------- bounded recovery --

// Harness with an explicit recovery config and a PLI sink.
struct BoundedHarness {
  explicit BoundedHarness(RtpReceiver::Config config) : receiver{make(config)} {}

  RtpReceiver make(RtpReceiver::Config config) {
    return RtpReceiver(
        s, config,
        [this](const RtpReceiver::CompletedFrame& f) { frames.push_back(f); },
        [this](const std::vector<std::int64_t>& seqs) {
          nacked.insert(nacked.end(), seqs.begin(), seqs.end());
        });
  }

  sim::Simulator s;
  std::vector<RtpReceiver::CompletedFrame> frames;
  std::vector<std::int64_t> nacked;
  std::vector<std::int64_t> plis;
  RtpReceiver receiver;
};

RtpPacket make_packet(std::int64_t seq, std::int64_t frame_id, int fragment,
                      int fragments, std::int64_t bytes = 1000) {
  RtpPacket p;
  p.seq = seq;
  p.frame_id = frame_id;
  p.fragment = fragment;
  p.fragments = fragments;
  p.bytes = bytes;
  return p;
}

TEST(Receiver, RejectsGarbageHeaders) {
  BoundedHarness h{{}};
  h.receiver.on_packet(make_packet(-1, 0, 0, 1), msec(1));      // bad seq
  h.receiver.on_packet(make_packet(0, -5, 0, 1), msec(1));      // bad frame
  h.receiver.on_packet(make_packet(0, 0, 0, 1, 0), msec(1));    // empty
  h.receiver.on_packet(make_packet(0, 0, 2, 2), msec(1));       // frag oob
  h.receiver.on_packet(make_packet(0, 0, -1, 2), msec(1));      // frag < 0
  h.receiver.on_packet(make_packet(0, 0, 0, 0), msec(1));       // no frags
  h.receiver.on_packet(make_packet(0, 0, 0, 1 << 20), msec(1)); // frag flood
  EXPECT_EQ(h.receiver.recovery_stats().invalid_packets, 7);
  EXPECT_EQ(h.receiver.assemblies(), 0u);
  EXPECT_TRUE(h.nacked.empty());
  EXPECT_EQ(h.receiver.total_media_bytes(), 0);
}

TEST(Receiver, RejectsAbsurdSeqJumpInsteadOfNackingTheRange) {
  BoundedHarness h{{}};
  h.receiver.on_packet(make_packet(0, 0, 0, 2), msec(1));
  // A corrupted header claiming seq 1e9 is not a billion losses.
  h.receiver.on_packet(make_packet(1'000'000'000, 1, 0, 2), msec(2));
  EXPECT_EQ(h.receiver.recovery_stats().invalid_packets, 1);
  EXPECT_TRUE(h.nacked.empty());
  EXPECT_EQ(h.receiver.outstanding_nacks(), 0u);
  // The stream continues undisturbed afterwards.
  h.receiver.on_packet(make_packet(1, 0, 1, 2), msec(3));
  EXPECT_EQ(h.frames.size(), 1u);
}

TEST(Receiver, StalePacketDoesNotReopenFinishedFrame) {
  BoundedHarness h{{}};
  const auto p0 = make_packet(0, 7, 0, 2);
  const auto p1 = make_packet(1, 7, 1, 2);
  h.receiver.on_packet(p0, msec(1));
  h.receiver.on_packet(p1, msec(2));
  ASSERT_EQ(h.frames.size(), 1u);
  EXPECT_EQ(h.receiver.assemblies(), 0u);
  // A late duplicate of the finished frame must not open a ghost assembly
  // (the legacy receiver leaked one per late duplicate).
  h.receiver.on_packet(p1, msec(40));
  EXPECT_EQ(h.receiver.assemblies(), 0u);
  EXPECT_EQ(h.receiver.recovery_stats().stale_packets, 1);
  EXPECT_EQ(h.frames.size(), 1u);  // and never double-completes
}

TEST(Receiver, ReorderedFragmentsStillAssemble) {
  BoundedHarness h{{}};
  // Frame of 4 fragments arriving 3,0,2,1: NACKs fire for the transient
  // gaps, but the frame completes and each seq's state clears on arrival.
  h.receiver.on_packet(make_packet(3, 0, 3, 4), msec(1));
  EXPECT_EQ(h.nacked, (std::vector<std::int64_t>{0, 1, 2}));
  h.receiver.on_packet(make_packet(0, 0, 0, 4), msec(2));
  h.receiver.on_packet(make_packet(2, 0, 2, 4), msec(3));
  h.receiver.on_packet(make_packet(1, 0, 1, 4), msec(4));
  ASSERT_EQ(h.frames.size(), 1u);
  EXPECT_EQ(h.frames[0].fragments, 4);
  EXPECT_EQ(h.receiver.outstanding_nacks(), 0u);
}

TEST(Receiver, NackBudgetGivesUpAfterConfiguredAttempts) {
  BoundedHarness h{{.nack_retry_budget = 3}};
  h.receiver.start();
  h.s.schedule_at(msec(1), [&]() {
    h.receiver.on_packet(make_packet(0, 0, 0, 3), msec(1));
    h.receiver.on_packet(make_packet(2, 0, 2, 3), msec(1));  // seq 1 missing
  });
  h.s.run_until(sec(2));
  // Initial NACK (attempt 1) + retries up to the budget, then give up.
  EXPECT_EQ(h.nacked.size(), 3u);
  EXPECT_EQ(h.receiver.outstanding_nacks(), 0u);
  EXPECT_EQ(h.receiver.recovery_stats().nack_give_ups, 1);
}

TEST(Receiver, NackBackoffDoublesTheRetryInterval) {
  auto count_nacks = [](bool backoff) {
    BoundedHarness h{{.nack_backoff = backoff}};
    h.receiver.start();
    h.s.schedule_at(msec(1), [&]() {
      h.receiver.on_packet(make_packet(0, 0, 0, 3), msec(1));
      h.receiver.on_packet(make_packet(2, 0, 2, 3), msec(1));
    });
    h.s.run_until(msec(950));  // ticks at 100..900 ms
    return h.nacked.size();
  };
  // Legacy cadence: initial + one per 100 ms tick. Backoff: initial, then
  // ~200/400/800 ms — a third of the reverse-path traffic.
  const auto legacy = count_nacks(false);
  const auto backed = count_nacks(true);
  EXPECT_EQ(legacy, 10u);
  EXPECT_EQ(backed, 4u);
}

TEST(Receiver, FrameDeadlineAbandonsAndRequestsKeyframe) {
  BoundedHarness h{{.frame_deadline = msec(300)}};
  h.receiver.set_pli_sink([&](const std::vector<std::int64_t>& ids) {
    h.plis.insert(h.plis.end(), ids.begin(), ids.end());
  });
  h.receiver.start();
  h.s.schedule_at(msec(1), [&]() {
    h.receiver.on_packet(make_packet(0, 5, 0, 2), msec(1));  // never finishes
  });
  h.s.run_until(sec(1));
  EXPECT_TRUE(h.frames.empty());
  EXPECT_EQ(h.receiver.assemblies(), 0u);
  const auto& r = h.receiver.recovery_stats();
  EXPECT_EQ(r.frames_abandoned, 1);
  EXPECT_EQ(r.keyframe_requests, 1);
  EXPECT_EQ(h.plis, (std::vector<std::int64_t>{5}));
  // The straggler arriving after abandonment is stale, not a ghost.
  h.receiver.on_packet(make_packet(1, 5, 1, 2), sec(1));
  EXPECT_EQ(h.receiver.assemblies(), 0u);
  EXPECT_EQ(h.receiver.recovery_stats().stale_packets, 1);
}

TEST(Receiver, AssemblyCapEvictsTheStalestFrame) {
  BoundedHarness h{{.max_assemblies = 4}};
  h.receiver.set_pli_sink([&](const std::vector<std::int64_t>& ids) {
    h.plis.insert(h.plis.end(), ids.begin(), ids.end());
  });
  // Six incomplete 2-fragment frames; contiguous seqs so no NACK noise.
  for (int f = 0; f < 6; ++f) {
    h.receiver.on_packet(make_packet(f, f, 0, 2), msec(10 * (f + 1)));
  }
  EXPECT_EQ(h.receiver.assemblies(), 4u);
  const auto& r = h.receiver.recovery_stats();
  EXPECT_EQ(r.assembly_evictions, 2);
  EXPECT_EQ(h.plis, (std::vector<std::int64_t>{0, 1}));  // oldest first
  EXPECT_EQ(r.peak_assemblies, 5u);  // transiently one over, then evicted
  // Evicted frames are finished: their packets are now stale.
  h.receiver.on_packet(make_packet(100, 0, 1, 2), msec(100));
  EXPECT_EQ(h.receiver.recovery_stats().stale_packets, 1);
  EXPECT_EQ(h.receiver.assemblies(), 4u);
}

TEST(Receiver, NackStateIsCappedAtTheConfiguredLimit) {
  BoundedHarness h{{.max_outstanding_nacks = 10}};
  h.receiver.on_packet(make_packet(0, 0, 0, 2), msec(1));
  h.receiver.on_packet(make_packet(50, 1, 0, 2), msec(2));  // 49 missing
  EXPECT_EQ(h.receiver.outstanding_nacks(), 10u);
  const auto& r = h.receiver.recovery_stats();
  EXPECT_EQ(r.nack_evictions, 39);
  EXPECT_EQ(r.peak_outstanding_nacks, 49u);
}

TEST(Receiver, IncomingRateMatchesSteadyStream) {
  ReceiverHarness h;
  Packetizer p(1000);
  // 1000 bytes every 10 ms = 800 kbps.
  for (int i = 0; i < 150; ++i) {
    auto pkt = p.packetize(i, 0, 1000)[0];
    h.receiver.on_packet(pkt, msec(10) * (i + 1));
  }
  EXPECT_NEAR(h.receiver.incoming_rate(msec(500)) / 1e3, 800.0, 40.0);
  EXPECT_EQ(h.receiver.frames_completed(), 150);
  EXPECT_EQ(h.receiver.total_media_bytes(), 150'000);
}

}  // namespace
}  // namespace poi360::rtp
