#pragma once

#include <deque>

#include "poi360/common/time.h"

namespace poi360::gcc {

/// Network usage signal produced by the delay-gradient detector.
enum class BandwidthUsage { kNormal, kOveruse, kUnderuse };

/// Trendline delay-gradient estimator with adaptive-threshold overuse
/// detection — the receiver-side heart of Google Congestion Control
/// (draft-alvestrand-rmcat-congestion / the WebRTC implementation the paper
/// compares FBCC against).
///
/// Fed one sample per packet group (we group per video frame): the change in
/// one-way delay between consecutive groups. A least-squares slope over the
/// last `window` accumulated-delay samples, scaled by the inter-group time,
/// estimates the queuing-delay trend; sustained positive trend above the
/// adaptive threshold signals overuse. This is precisely the "end-to-end
/// delay metric" whose sluggishness over buffer-bloated cellular paths
/// motivates FBCC (§3.2, §4.3.1).
class TrendlineEstimator {
 public:
  struct Config {
    int window_size = 20;            // samples in the regression
    double smoothing = 0.9;          // EWMA on accumulated delay
    double gain = 4.0;               // trend -> modified-trend scaling
    double threshold_init_ms = 12.5; // gamma(0)
    double k_up = 0.0087;            // threshold adaptation (raise)
    double k_down = 0.039;           // threshold adaptation (lower)
    double threshold_min_ms = 6.0;
    double threshold_max_ms = 600.0;
    SimDuration overuse_time = msec(10);  // sustained time before Overuse
  };

  TrendlineEstimator();
  explicit TrendlineEstimator(Config config);

  /// One packet-group sample: group completion times at sender and receiver.
  /// Returns the updated usage signal.
  BandwidthUsage update(SimTime group_send_time, SimTime group_arrival_time);

  BandwidthUsage state() const { return state_; }
  double trend() const { return trend_; }
  double threshold_ms() const { return threshold_ms_; }

 private:
  void detect(double modified_trend_ms, SimTime now);

  Config config_;
  bool first_ = true;
  SimTime prev_send_ = 0;
  SimTime prev_arrival_ = 0;
  SimTime first_arrival_ = 0;

  double accumulated_delay_ms_ = 0.0;
  double smoothed_delay_ms_ = 0.0;
  std::deque<std::pair<double, double>> samples_;  // (arrival ms, smoothed)

  double trend_ = 0.0;
  double threshold_ms_;
  SimTime overuse_start_ = -1;
  double prev_modified_trend_ = 0.0;
  BandwidthUsage state_ = BandwidthUsage::kNormal;
};

}  // namespace poi360::gcc
