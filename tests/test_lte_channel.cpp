#include <gtest/gtest.h>

#include "poi360/common/stats.h"
#include "poi360/lte/channel.h"
#include "poi360/lte/tbs.h"

namespace poi360::lte {
namespace {

TEST(RssMapping, AnchorsAndClamps) {
  EXPECT_NEAR(to_mbps(capacity_for_rss(-73.0)), 6.5, 1e-9);
  EXPECT_NEAR(to_mbps(capacity_for_rss(-115.0)), 1.6, 1e-9);
  EXPECT_NEAR(to_mbps(capacity_for_rss(-60.0)), 8.8, 1e-9);
  // Clamped outside the anchor range.
  EXPECT_NEAR(to_mbps(capacity_for_rss(-140.0)), 0.6, 1e-9);
  EXPECT_NEAR(to_mbps(capacity_for_rss(-20.0)), 8.8, 1e-9);
}

TEST(RssMapping, MonotoneInSignalStrength) {
  double prev = 0.0;
  for (double rss = -125.0; rss <= -55.0; rss += 2.5) {
    const double cap = capacity_for_rss(rss);
    EXPECT_GE(cap, prev) << "rss=" << rss;
    prev = cap;
  }
}

TEST(Channel, DeterministicForSeed) {
  ChannelConfig config;
  UplinkChannel a(config, 5), b(config, 5);
  for (int i = 1; i <= 2000; ++i) {
    EXPECT_DOUBLE_EQ(a.advance(msec(i)), b.advance(msec(i)));
  }
}

TEST(Channel, MeanCapacityNearExpectation) {
  ChannelConfig config;
  config.rss_dbm = -73.0;
  config.mean_cell_load = 0.2;
  config.outage_per_min = 0.0;  // isolate load+fading
  UplinkChannel ch(config, 11);
  RunningStats stats;
  for (int i = 1; i <= 120'000; ++i) {
    stats.add(ch.advance(msec(i)));
  }
  // E[cap] ~ base * E[e^x] * (1 - load); e^x has mean ~e^(std^2/2).
  const double expected = to_mbps(capacity_for_rss(-73.0)) * 0.8;
  EXPECT_NEAR(to_mbps(stats.mean()), expected, expected * 0.25);
}

TEST(Channel, BusyCellLowersCapacity) {
  ChannelConfig idle;
  idle.mean_cell_load = 0.1;
  idle.outage_per_min = 0.0;
  ChannelConfig busy = idle;
  busy.mean_cell_load = 0.5;
  UplinkChannel a(idle, 3), b(busy, 3);
  RunningStats sa, sb;
  for (int i = 1; i <= 60'000; ++i) {
    sa.add(a.advance(msec(i)));
    sb.add(b.advance(msec(i)));
  }
  EXPECT_LT(sb.mean(), sa.mean());
}

TEST(Channel, WeakSignalLowersCapacity) {
  ChannelConfig strong;
  strong.rss_dbm = -73.0;
  strong.outage_per_min = 0.0;
  ChannelConfig weak = strong;
  weak.rss_dbm = -115.0;
  UplinkChannel a(strong, 3), b(weak, 3);
  RunningStats sa, sb;
  for (int i = 1; i <= 30'000; ++i) {
    sa.add(a.advance(msec(i)));
    sb.add(b.advance(msec(i)));
  }
  EXPECT_LT(sb.mean(), 0.5 * sa.mean());
}

TEST(Channel, OutagesOccurWhenConfigured) {
  ChannelConfig config;
  config.outage_per_min = 30.0;  // very frequent for the test
  config.outage_mean_duration = msec(300);
  UplinkChannel ch(config, 9);
  int outage_subframes = 0;
  for (int i = 1; i <= 60'000; ++i) {
    ch.advance(msec(i));
    if (ch.in_outage()) ++outage_subframes;
  }
  // ~30 outages of ~300 ms each within 60 s => roughly 9 s +- wide margin.
  EXPECT_GT(outage_subframes, 2'000);
  EXPECT_LT(outage_subframes, 30'000);
}

TEST(Channel, NoOutagesWhenDisabled) {
  ChannelConfig config;
  config.outage_per_min = 0.0;
  UplinkChannel ch(config, 9);
  for (int i = 1; i <= 60'000; ++i) {
    ch.advance(msec(i));
    ASSERT_FALSE(ch.in_outage());
  }
}

TEST(Channel, SpeedAcceleratesFading) {
  ChannelConfig still;
  still.outage_per_min = 0.0;
  ChannelConfig fast = still;
  fast.speed_mph = 50.0;
  fast.outage_per_min = 0.0;
  UplinkChannel a(still, 17), b(fast, 17);
  // Count zero crossings of capacity around its mean as a proxy for the
  // fading rate.
  RunningStats ma, mb;
  std::vector<double> ca, cb;
  for (int i = 1; i <= 60'000; ++i) {
    ca.push_back(a.advance(msec(i)));
    cb.push_back(b.advance(msec(i)));
    ma.add(ca.back());
    mb.add(cb.back());
  }
  auto crossings = [](const std::vector<double>& v, double mean) {
    int n = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if ((v[i - 1] - mean) * (v[i] - mean) < 0) ++n;
    }
    return n;
  };
  EXPECT_GT(crossings(cb, mb.mean()), 2 * crossings(ca, ma.mean()));
}

TEST(Channel, CapacityNeverNegative) {
  ChannelConfig config;
  config.fading_std = 0.6;
  config.outage_per_min = 10.0;
  UplinkChannel ch(config, 23);
  for (int i = 1; i <= 120'000; ++i) {
    ASSERT_GE(ch.advance(msec(i)), 0.0);
  }
}

TEST(Tbs, QuantizerBehaviour) {
  TbsQuantizer q;
  EXPECT_EQ(q.quantize(0), 0);
  EXPECT_EQ(q.quantize(31), 0);          // below minimum grant
  EXPECT_EQ(q.quantize(32), 24);         // largest multiple of 24 <= 32
  EXPECT_EQ(q.quantize(48), 48);
  EXPECT_EQ(q.quantize(50), 48);
  EXPECT_EQ(q.quantize(1'000'000), 9000);  // per-subframe ceiling
}

TEST(Tbs, QuantizeNeverExceedsInput) {
  TbsQuantizer q;
  for (std::int64_t g = 0; g < 3000; g += 7) {
    EXPECT_LE(q.quantize(g), g);
  }
}

}  // namespace
}  // namespace poi360::lte
