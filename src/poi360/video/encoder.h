#pragma once

#include <cstdint>

#include "poi360/common/units.h"
#include "poi360/video/frame.h"
#include "poi360/video/quality.h"
#include "poi360/video/tile_grid.h"

namespace poi360::video {

/// Rate-controlled panoramic encoder model.
///
/// Mirrors the paper's pipeline: the spatial compressor shrinks each tile by
/// its level l_ij (so only `effective_tiles` worth of pixels remain), then a
/// WebRTC-style encoder (VP8 in the prototype) encodes the stitched canvas at
/// the target bitrate R_v. Two behaviours matter for the evaluation and are
/// modeled explicitly:
///
///  * the encoder cannot usefully spend more than `saturation_bpp` bits per
///    pixel — an aggressively compressed canvas therefore *undershoots* R_v,
///    which is why aggressive modes also reduce frame delay (Fig. 13);
///  * quality per tile follows QualityModel from the achieved bpp.
struct EncoderConfig {
  int fps = 36;                    // paper quotes a 36 FPS stream (§6.1.1)
  double saturation_bpp = 0.14;    // max useful bits per effective pixel
  /// Quality floor (the encoder's maximum quantizer): a frame costs at
  /// least this many bits per surviving pixel no matter the target rate.
  /// This is why conservative spatial modes overshoot R_v and queue up —
  /// Pyramid's higher delay in Fig. 13. (At max quantizer the raw 4K
  /// panorama still costs ~4.8 Mbps; the paper's 12.65 Mbps "raw bitrate"
  /// corresponds to a camera stream at a comfortable quantizer, ~0.047 bpp.)
  double floor_bpp = 0.018;
  std::int64_t overhead_bytes = 400;  // container + embedded ROI/mode header
  /// Rate controllers undershoot the target so the average output stays
  /// below R_v (VP8's behaviour); without this margin the application-layer
  /// queue is critically loaded and backlog random-walks upward.
  double utilization = 0.93;

  /// When a tile's compression level improves between consecutive frames,
  /// its new pixels have no temporal reference and must be intra-coded at
  /// roughly this multiple of the frame's inter bit cost. Schemes that
  /// relocate large full-quality regions on every ROI update (Conduit's
  /// window) pay this repeatedly; smooth-falloff modes pay little.
  double refresh_intra_factor = 1.2;
};

class PanoramicEncoder {
 public:
  PanoramicEncoder(TileGrid grid, EncoderConfig config);

  /// Encodes one frame under compression matrix `levels` at target bitrate
  /// `rv`. `sender_roi` and `mode_id` are embedded as metadata. Accepts a
  /// shared view (a plain CompressionMatrix converts implicitly, copying
  /// once — hot paths should pass a cached view).
  EncodedFrame encode(SimTime capture_time, TileIndex sender_roi, int mode_id,
                      CompressionMatrixView levels, Bitrate rv);

  const TileGrid& grid() const { return grid_; }
  const EncoderConfig& config() const { return config_; }

  SimDuration frame_interval() const {
    return static_cast<SimDuration>(kSecond / config_.fps);
  }

 private:
  TileGrid grid_;
  EncoderConfig config_;
  std::int64_t next_id_ = 0;
  CompressionMatrixView prev_levels_;  // empty until the first frame
};

}  // namespace poi360::video
