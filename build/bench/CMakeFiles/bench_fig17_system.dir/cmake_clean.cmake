file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_system.dir/bench_fig17_system.cpp.o"
  "CMakeFiles/bench_fig17_system.dir/bench_fig17_system.cpp.o.d"
  "bench_fig17_system"
  "bench_fig17_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
