#include "poi360/serve/managed_session.h"

#include <stdexcept>

namespace poi360::serve {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kIdle:
      return "idle";
    case SessionState::kAdmitted:
      return "admitted";
    case SessionState::kActive:
      return "active";
    case SessionState::kDraining:
      return "draining";
    case SessionState::kClosed:
      return "closed";
    case SessionState::kFailed:
      return "failed";
  }
  return "?";
}

void ManagedSession::admit(Config config, SimTime now) {
  if (state_ != SessionState::kIdle) {
    throw std::logic_error("ManagedSession::admit on occupied slot");
  }
  config_ = std::move(config);
  admitted_at_ = now;
  activated_at_ = 0;
  last_marker_ = 0;
  last_progress_at_ = now;
  force_drained_ = false;
  error_.clear();
  state_ = SessionState::kAdmitted;
}

void ManagedSession::activate(SimTime now) {
  if (state_ != SessionState::kAdmitted) {
    throw std::logic_error("ManagedSession::activate requires kAdmitted");
  }
  try {
    session_ = std::make_unique<core::Session>(config_.session);
    session_->start();
    activated_at_ = now;
    last_progress_at_ = now;
    state_ = SessionState::kActive;
  } catch (const std::exception& e) {
    error_ = e.what();
    state_ = SessionState::kFailed;
  }
}

void ManagedSession::advance_until(SimTime t) {
  if (state_ != SessionState::kActive) return;
  try {
    // The inner session runs on its own private timeline; advancing it to
    // the master clock in slices is what interleaves many sessions on one
    // logical timeline without sharing any mutable state between them.
    session_->advance_until(t - activated_at_);
  } catch (const std::exception& e) {
    error_ = e.what();
    state_ = SessionState::kFailed;
  }
}

void ManagedSession::drain(SimTime now) { close(now, /*forced=*/false); }

void ManagedSession::force_drain(SimTime now) { close(now, /*forced=*/true); }

void ManagedSession::close(SimTime now, bool forced) {
  if (state_ != SessionState::kActive && state_ != SessionState::kAdmitted) {
    return;
  }
  state_ = SessionState::kDraining;
  force_drained_ = forced;
  if (session_) {
    try {
      session_->finish();
    } catch (const std::exception& e) {
      error_ = e.what();
      state_ = SessionState::kFailed;
      return;
    }
  }
  (void)now;
  state_ = SessionState::kClosed;
}

void ManagedSession::release() {
  session_.reset();
  state_ = SessionState::kIdle;
}

std::int64_t ManagedSession::progress_marker() const {
  if (!session_) return 0;
  const obs::MetricsRegistry& reg = session_->metrics().registry();
  return reg.counter_value("frame.displayed") +
         reg.counter_value("sender.skipped_frames") +
         session_->observers().receiver->recovery_stats().frames_abandoned;
}

bool ManagedSession::observe_stuck(SimTime now) {
  if (state_ != SessionState::kActive) return false;
  const std::int64_t marker = progress_marker();
  if (marker != last_marker_) {
    last_marker_ = marker;
    last_progress_at_ = now;
    return false;
  }
  return now - last_progress_at_ > config_.watchdog_deadline;
}

}  // namespace poi360::serve
