#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poi360/search/corpus.h"
#include "poi360/search/driver.h"

// One full search campaign: the three strategies run in sequence against a
// shared session budget and a shared coverage map, and every cliff found is
// converted to a corpus entry (and optionally written to disk). The whole
// report — logs, coverage, cliffs — is a deterministic function of
// (seed, budget, duration), byte-identical for any worker count.

namespace poi360::search {

struct CampaignConfig {
  std::uint64_t seed = 1000;  // runner::kDefaultSeed0
  int budget = 64;            // total session evaluations
  double duration_s = 20.0;   // simulated seconds per session
  int jobs = 0;               // BatchRunner workers; 0 = auto
  double freeze_threshold = 0.10;  // bisection cliff predicate
  double min_gap = 0.02;           // annealing commit threshold
  std::string corpus_dir;  // when non-empty, write entries here
};

struct CampaignResult {
  std::vector<Cliff> cliffs;
  std::vector<CorpusEntry> entries;  // committed form of `cliffs`
  int sessions = 0;                  // budget actually spent
  CoverageMap coverage;
  /// The full deterministic report (strategy logs + coverage + cliff
  /// summary) — what bench_chaos_search prints on stdout.
  std::string report;
};

CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace poi360::search
