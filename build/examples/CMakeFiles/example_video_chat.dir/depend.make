# Empty dependencies file for example_video_chat.
# This may be replaced when dependencies are built.
