// Substrate ablation: abstract cell-load process vs. explicit multi-user
// proportional-fair cell.
//
// The headline results use an Ornstein-Uhlenbeck load process plus
// surge/famine telegraphs calibrated to the paper's measurements. This
// bench swaps in an explicit cell of N bursty background UEs (equal-share
// PF scheduling) and checks that POI360's behaviour is robust to how the
// competition is modeled — and shows how performance scales with the number
// of competitors.

#include <cstdio>

#include "poi360/common/table.h"
#include "util/experiment.h"

using namespace poi360;

int main() {
  Table t({"cell model", "mean PSNR (dB)", "freeze", "thpt (Mbps)"});

  {
    auto config = bench::transport_config(core::RateControl::kFbcc, sec(150));
    const auto merged = bench::run_merged(config, 5);
    t.add_row({"abstract load process", fmt(merged.mean_roi_psnr(), 2),
               fmt_pct(merged.freeze_ratio()),
               fmt(to_mbps(merged.mean_throughput()), 2)});
  }
  for (int users : {0, 3, 6, 12, 24}) {
    auto config = bench::transport_config(core::RateControl::kFbcc, sec(150));
    config.channel.explicit_users = users;
    const auto merged = bench::run_merged(config, 5);
    t.add_row({"explicit PF cell, " + std::to_string(users) + " UEs",
               fmt(merged.mean_roi_psnr(), 2),
               fmt_pct(merged.freeze_ratio()),
               fmt(to_mbps(merged.mean_throughput()), 2)});
  }
  std::printf("=== Substrate ablation: cell competition model ===\n%s",
              t.to_string().c_str());
  return 0;
}
