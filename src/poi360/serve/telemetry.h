#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "poi360/common/time.h"
#include "poi360/obs/metrics_http.h"
#include "poi360/obs/metrics_registry.h"
#include "poi360/obs/sampling.h"
#include "poi360/obs/slo.h"

// The serving layer's live telemetry plane. Everything here is opt-in: with
// `enabled` false and no metrics port, the drivers register no extra
// metrics, draw no extra RNG, and produce byte-identical summaries — the
// determinism contract the bench CI diffs. With it on, the drivers expose
// labeled families, SLO burn-rate counters and bucket histograms, and
// (optionally) a real scrape socket + sampled per-session trace export.

namespace poi360::serve {

struct TelemetryConfig {
  /// Master switch for the labeled families / SLO engine / bucket
  /// histograms. Off by default: the soak/fleet summaries print registry
  /// entry counts, so any extra registration would change stdout.
  bool enabled = false;

  /// TCP port for the /metrics endpoint; -1 = no server, 0 = ephemeral
  /// (the driver reports the kernel's pick). Setting a port implies
  /// `enabled`.
  int metrics_port = -1;

  obs::SloConfig slo{};

  /// When non-empty, sampled sessions run with tracing on and export one
  /// trace file each under this directory (must exist).
  std::string trace_dir;
  obs::TraceSampleConfig trace_sampling{};

  /// Fleet only: how often each cell publishes its registry to the plane.
  SimDuration publish_period = sec(5);

  bool telemetry_on() const { return enabled || metrics_port >= 0; }
  bool tracing_on() const { return !trace_dir.empty(); }
};

/// Shared scrape endpoint: a master registry plus a pre-rendered snapshot
/// behind a real socket. The soak driver (single-threaded) publishes its
/// own registry's rendered text; fleet cells (one per worker thread) publish
/// whole registries that are overwritten into the master under a mutex —
/// cells own disjoint label sets, so publishes are idempotent per cell and
/// the final master is identical for every --jobs value.
class TelemetryPlane {
 public:
  explicit TelemetryPlane(const TelemetryConfig& config);
  ~TelemetryPlane();

  const TelemetryConfig& config() const { return config_; }
  bool http_enabled() const { return server_ != nullptr; }
  /// Actual bound port, or -1 when no server is running.
  int metrics_port() const { return server_ ? server_->port() : -1; }
  std::int64_t scrapes_served() const {
    return server_ ? server_->requests_served() : 0;
  }

  /// Merges `src` into the master registry (overwrite semantics) and
  /// re-renders the scrape snapshot. Safe from any worker thread.
  void publish(const obs::MetricsRegistry& src);

  /// Swaps in externally rendered exposition text (soak path: the driver's
  /// own registry is the master and is rendered on its snapshot tick).
  void publish_rendered(std::string text);

  /// The merged master registry. Read only when publishers are quiescent
  /// (after run()).
  const obs::MetricsRegistry& registry() const { return master_; }

 private:
  TelemetryConfig config_;
  std::mutex mu_;
  obs::MetricsRegistry master_;
  std::unique_ptr<obs::MetricsHttpServer> server_;
};

}  // namespace poi360::serve
