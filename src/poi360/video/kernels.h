#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#if defined(POI360_SIMD)
#include <experimental/simd>
#endif

namespace poi360::video::kernels {

/// Contiguous structure-of-arrays kernels for the encoder-path hot loops:
/// the intra-refresh upgrade scan, the foveated ring-MSE accumulation, and
/// the level-LUT gather that materializes a compression matrix. Each kernel
/// has a portable scalar implementation — the reference the differential
/// tests pin everything else to — and, behind the `POI360_SIMD` CMake flag,
/// a `std::experimental::simd` variant that the unsuffixed entry points
/// dispatch to.
///
/// The scalar kernels accumulate strictly left-to-right over the input,
/// i.e. the exact order of the per-tile loops they replaced, so their sums
/// are bit-identical to the pre-kernel code. The SIMD variants reassociate
/// the reduction across lanes (that is the point) and may therefore differ
/// from the scalar path in the last ulp; the scalar-vs-SIMD differential
/// suite bounds that divergence.

// ------------------------------------------------------------- refresh --

/// Intra-refresh upgrade mass between two frozen inverse-level arrays:
///   sum_k max(0, inv_cur[k] - inv_prev[k])
/// in units of tiles. This is the per-tile scan PanoramicEncoder::encode
/// used to run over the 12x8 matrix — two divides per tile — now two
/// contiguous loads and a compare per tile.
inline double upgrade_gain_sum_scalar(const double* inv_cur,
                                      const double* inv_prev,
                                      std::size_t n) {
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double gain = inv_cur[k] - inv_prev[k];
    if (gain > 0.0) sum += gain;
  }
  return sum;
}

/// Clamped ring-MSE accumulation over gathered per-tile linear-MSE factors:
///   sum_k min(floor_mse, enc_mse * factors[idx[k]])
/// `factors[t] = 10^(downsample_db_per_octave * log2(l_t) / 10)` is frozen
/// on the matrix, `enc_mse = 10^(-enc_psnr/10)` is per-call, and the min
/// applies the QualityModel's PSNR floor tile by tile — `10^(-max(a,b)/10)
/// = min(10^(-a/10), 10^(-b/10))` because the map is monotone decreasing.
inline double ring_mse_sum_scalar(const double* factors,
                                  const std::int32_t* idx, int n,
                                  double enc_mse, double floor_mse) {
  double sum = 0.0;
  for (int k = 0; k < n; ++k) {
    sum += std::min(floor_mse, enc_mse * factors[idx[k]]);
  }
  return sum;
}

/// Pure index gather: out[k] = src[idx[k]]. Materializes a per-ROI array
/// (levels, log2 levels, inverse levels, MSE factors) out of a per-mode
/// distance LUT using TileGridTables' per-center index map. A gather of
/// identical values is bit-identical however it is vectorized.
inline void gather_scalar(const double* src, const std::int32_t* idx,
                          std::size_t n, double* out) {
  for (std::size_t k = 0; k < n; ++k) out[k] = src[idx[k]];
}

// ---------------------------------------------------------- simd lanes --

#if defined(POI360_SIMD)

namespace stdx = std::experimental;

inline double upgrade_gain_sum_simd(const double* inv_cur,
                                    const double* inv_prev, std::size_t n) {
  using simd_t = stdx::native_simd<double>;
  const std::size_t lanes = simd_t::size();
  simd_t acc(0.0);
  std::size_t k = 0;
  for (; k + lanes <= n; k += lanes) {
    simd_t cur, prev;
    cur.copy_from(inv_cur + k, stdx::element_aligned);
    prev.copy_from(inv_prev + k, stdx::element_aligned);
    simd_t gain = cur - prev;
    stdx::where(gain < 0.0, gain) = 0.0;
    acc += gain;
  }
  double sum = stdx::reduce(acc);
  for (; k < n; ++k) {
    const double gain = inv_cur[k] - inv_prev[k];
    if (gain > 0.0) sum += gain;
  }
  return sum;
}

inline double ring_mse_sum_simd(const double* factors,
                                const std::int32_t* idx, int n,
                                double enc_mse, double floor_mse) {
  using simd_t = stdx::native_simd<double>;
  constexpr int lanes = static_cast<int>(simd_t::size());
  const simd_t enc(enc_mse), floor(floor_mse);
  simd_t acc(0.0);
  int k = 0;
  for (; k + lanes <= n; k += lanes) {
    simd_t f([&](auto lane) { return factors[idx[k + lane]]; });
    acc += stdx::min(floor, enc * f);
  }
  double sum = stdx::reduce(acc);
  for (; k < n; ++k) {
    sum += std::min(floor_mse, enc_mse * factors[idx[k]]);
  }
  return sum;
}

#endif  // POI360_SIMD

// ------------------------------------------------------------ dispatch --

inline double upgrade_gain_sum(const double* inv_cur, const double* inv_prev,
                               std::size_t n) {
#if defined(POI360_SIMD)
  return upgrade_gain_sum_simd(inv_cur, inv_prev, n);
#else
  return upgrade_gain_sum_scalar(inv_cur, inv_prev, n);
#endif
}

inline double ring_mse_sum(const double* factors, const std::int32_t* idx,
                           int n, double enc_mse, double floor_mse) {
#if defined(POI360_SIMD)
  return ring_mse_sum_simd(factors, idx, n, enc_mse, floor_mse);
#else
  return ring_mse_sum_scalar(factors, idx, n, enc_mse, floor_mse);
#endif
}

inline void gather(const double* src, const std::int32_t* idx, std::size_t n,
                   double* out) {
  gather_scalar(src, idx, n, out);
}

}  // namespace poi360::video::kernels
