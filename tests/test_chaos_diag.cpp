// Chaos suite for the diag-path fault injector: randomized fault schedules
// must never deadlock the session or corrupt its accounting, and the
// hardened FBCC must degrade toward GCC — not collapse — when its sensor
// fails underneath it.

#include <gtest/gtest.h>

#include <set>

#include "poi360/common/rng.h"
#include "poi360/core/config.h"
#include "poi360/core/session.h"

namespace poi360::core {
namespace {

void expect_sane(const metrics::SessionMetrics& m, SimDuration duration) {
  std::set<std::int64_t> ids;
  for (const auto& f : m.frames()) {
    EXPECT_TRUE(ids.insert(f.frame_id).second) << "duplicate frame id";
    EXPECT_GT(f.delay, 0);
    EXPECT_LE(f.display_time, duration);
    EXPECT_GE(f.roi_level, 1.0);
  }
  EXPECT_GE(m.skipped_frames(), 0);
  const auto& r = m.diag_robustness();
  EXPECT_GE(r.fallback_episodes, 0);
  EXPECT_GE(r.rejected_reports, 0);
  EXPECT_GE(r.degraded_time, 0);
  EXPECT_LE(r.degraded_time, duration);
}

lte::DiagFaultConfig random_faults(Rng& rng) {
  lte::DiagFaultConfig f;
  f.enabled = true;
  f.loss_prob = rng.uniform(0.0, 0.5);
  f.stall_per_min = rng.uniform(0.0, 20.0);
  f.stall_mean_duration = msec(rng.uniform_int(150, 900));
  f.delivery_jitter = msec(rng.uniform_int(0, 200));
  f.duplicate_prob = rng.uniform(0.0, 0.15);
  f.garbage_prob = rng.uniform(0.0, 0.15);
  f.handover_per_min = rng.uniform(0.0, 4.0);
  return f;
}

TEST(ChaosDiag, RandomizedFaultSchedulesNeverWedgeTheSession) {
  const SimDuration duration = sec(12);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 7919);
    SessionConfig config = presets::cellular_static();
    config.duration = duration;
    config.seed = 600 + seed;
    config.diag_faults = random_faults(rng);

    Session session(config);
    session.run();  // termination == no deadlock
    const auto& m = session.metrics();
    expect_sane(m, duration);
    // The pipeline keeps moving: frames either display or are accounted
    // as sender skips, across every fault realization.
    EXPECT_GT(m.displayed_frames() + m.skipped_frames(), 250)
        << "seed " << seed;
    EXPECT_GT(m.displayed_frames(), 100) << "seed " << seed;

    // The injector's own accounting must balance (jittered deliveries
    // still pending at the simulation horizon are counted in_flight).
    const auto* faults = session.observers().diag_faults;
    ASSERT_NE(faults, nullptr);
    const auto& s = faults->stats();
    EXPECT_EQ(s.delivered + s.dropped + s.in_flight,
              s.received + s.duplicated)
        << "seed " << seed;
    EXPECT_LE(s.in_flight, 8) << "seed " << seed;
  }
}

TEST(ChaosDiag, WatchdogRecoveryIsBounded) {
  // A feed with frequent long stalls: every stall must be answered by a
  // fallback episode, and the controller must keep re-engaging (bounded
  // recovery) rather than latching into degraded mode forever.
  SessionConfig config = presets::cellular_static();
  config.duration = sec(20);
  config.seed = 77;
  config.diag_faults.enabled = true;
  config.diag_faults.stall_per_min = 12.0;
  config.diag_faults.stall_mean_duration = msec(700);
  config.diag_faults.stall_min_duration = msec(400);

  Session session(config);
  session.run();
  const auto& r = session.metrics().diag_robustness();
  EXPECT_GE(r.fallback_episodes, 2);
  // Re-engagement works: with ~700 ms stalls over 20 s the controller is
  // degraded only a fraction of the run, not latched.
  EXPECT_LT(r.degraded_time, config.duration / 2);
  EXPECT_GT(r.degraded_time, 0);
}

TEST(ChaosDiag, HardenedFbccStaysNearGccUnderSensorFailure) {
  // Acceptance scenario: 30% diag loss plus stall bursts. The hardened
  // FBCC must ride its GCC fallback — its displayed-frame count stays
  // within 15% of the pure-GCC baseline instead of collapsing.
  auto faulty = [](RateControl rc, std::uint64_t seed) {
    SessionConfig config = presets::cellular_static();
    config.rate_control = rc;
    config.duration = sec(20);
    config.seed = seed;
    config.diag_faults.enabled = true;
    config.diag_faults.loss_prob = 0.30;
    config.diag_faults.stall_per_min = 8.0;
    config.diag_faults.stall_mean_duration = msec(600);
    config.diag_faults.stall_min_duration = msec(300);
    Session session(config);
    session.run();
    return session.metrics();
  };

  std::int64_t fbcc_frames = 0, gcc_frames = 0, episodes = 0;
  for (std::uint64_t seed : {901, 902, 903}) {
    const auto fm = faulty(RateControl::kFbcc, seed);
    const auto gm = faulty(RateControl::kGcc, seed);
    fbcc_frames += fm.displayed_frames();
    gcc_frames += gm.displayed_frames();
    episodes += fm.diag_robustness().fallback_episodes;
    // GCC ignores the sensor entirely: its run must report no fallback.
    EXPECT_EQ(gm.diag_robustness().fallback_episodes, 0);
  }
  ASSERT_GT(gcc_frames, 0);
  // The stall bursts actually exercised the fallback path.
  EXPECT_GE(episodes, 1);
  const double ratio = static_cast<double>(fbcc_frames) /
                       static_cast<double>(gcc_frames);
  EXPECT_GE(ratio, 0.85) << "hardened FBCC collapsed under diag faults";
}

TEST(ChaosDiag, GarbageFloodIsRejectedNotConsumed) {
  // Every surviving report corrupted: validation must shield the
  // controller (high rejected count) and the session must stay healthy on
  // the GCC fallback.
  SessionConfig config = presets::cellular_static();
  config.duration = sec(15);
  config.seed = 88;
  config.diag_faults.enabled = true;
  config.diag_faults.garbage_prob = 1.0;

  Session session(config);
  session.run();
  const auto& m = session.metrics();
  const auto& r = m.diag_robustness();
  EXPECT_GT(r.rejected_reports, 100);
  EXPECT_GE(r.fallback_episodes, 1);
  EXPECT_GT(m.displayed_frames(), 150);
}

}  // namespace
}  // namespace poi360::core
