#!/usr/bin/env python3
"""Regression tests for check_perf.py, driven as a subprocess the same way
the perf gate invokes it. Run directly or via ctest (label `tools`)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_PY = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "check_perf.py")


def report(names_to_ns, build_type=None):
    doc = {"benchmarks": [
        {"name": name, "cpu_time": ns, "time_unit": "ns"}
        for name, ns in names_to_ns.items()
    ]}
    if build_type is not None:
        doc["context"] = {"library_build_type": build_type}
    return doc


class CheckPerfTest(unittest.TestCase):
    def run_gate(self, baseline, current, extra_args=(),
                 baseline_build_type=None, current_build_type=None):
        with tempfile.TemporaryDirectory() as tmp:
            bpath = os.path.join(tmp, "baseline.json")
            cpath = os.path.join(tmp, "current.json")
            with open(bpath, "w") as f:
                json.dump(report(baseline, baseline_build_type), f)
            with open(cpath, "w") as f:
                json.dump(report(current, current_build_type), f)
            return subprocess.run(
                [sys.executable, CHECK_PY, "--baseline", bpath,
                 "--current", cpath, *extra_args],
                capture_output=True, text=True)

    def test_clean_match_passes(self):
        r = self.run_gate({"BM_a": 100.0, "BM_b": 50.0},
                          {"BM_a": 101.0, "BM_b": 49.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("perf gate OK", r.stdout)

    def test_missing_baseline_entry_fails_with_name(self):
        r = self.run_gate({"BM_kept": 100.0, "BM_vanished": 100.0},
                          {"BM_kept": 100.0})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        # Named loudly in both the comparison table and the failure report.
        self.assertIn("BM_vanished", r.stdout)
        self.assertIn("<< MISSING", r.stdout)
        self.assertIn("BM_vanished", r.stderr)
        self.assertIn("missing from the current run", r.stderr)

    def test_regression_beyond_tolerance_fails(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 200.0})
        self.assertEqual(r.returncode, 1)
        self.assertIn("<< REGRESSION", r.stdout)
        self.assertIn("BM_a", r.stderr)

    def test_regression_within_tolerance_passes(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 120.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_new_benchmark_is_informational_only(self):
        r = self.run_gate({"BM_a": 100.0},
                          {"BM_a": 100.0, "BM_fresh": 1.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("BM_fresh", r.stdout)

    def test_ceiling_failure_names_benchmark(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 100.0},
                          ["--max-ns", "BM_a=50"])
        self.assertEqual(r.returncode, 1)
        self.assertIn("exceeded its absolute ceiling", r.stderr)

    def test_ceiling_on_missing_benchmark_fails(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 100.0},
                          ["--max-ns", "BM_ghost=50"])
        self.assertEqual(r.returncode, 1)
        self.assertIn("BM_ghost", r.stderr)

    def test_subns_regression_within_delta_passes(self):
        # 1.3 -> 2.2 is 1.7x but only 0.9ns — codegen noise between -O2 and
        # -O3, ignored by the default 2ns absolute slack.
        r = self.run_gate({"BM_tiny": 1.3}, {"BM_tiny": 2.2})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_subns_regression_beyond_delta_fails(self):
        r = self.run_gate({"BM_tiny": 1.3}, {"BM_tiny": 4.0})
        self.assertEqual(r.returncode, 1)
        self.assertIn("BM_tiny", r.stderr)

    def test_zero_min_delta_restores_strict_ratio_check(self):
        r = self.run_gate({"BM_tiny": 1.3}, {"BM_tiny": 2.2},
                          ["--min-delta-ns", "0"])
        self.assertEqual(r.returncode, 1)
        self.assertIn("<< REGRESSION", r.stdout)

    def test_build_type_mismatch_warns_but_passes(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 100.0},
                          baseline_build_type="release",
                          current_build_type="debug")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("library_build_type mismatch", r.stderr)
        self.assertIn("release", r.stderr)
        self.assertIn("debug", r.stderr)

    def test_build_type_match_is_silent(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 100.0},
                          baseline_build_type="release",
                          current_build_type="release")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("library_build_type mismatch", r.stderr)

    def test_absent_build_type_is_silent(self):
        r = self.run_gate({"BM_a": 100.0}, {"BM_a": 100.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("library_build_type mismatch", r.stderr)


if __name__ == "__main__":
    unittest.main()
