#include "poi360/core/config.h"

namespace poi360::core {

std::string to_string(CompressionScheme s) {
  switch (s) {
    case CompressionScheme::kPoi360: return "POI360";
    case CompressionScheme::kConduit: return "Conduit";
    case CompressionScheme::kPyramid: return "Pyramid";
  }
  return "?";
}

std::string to_string(RateControl r) {
  switch (r) {
    case RateControl::kFbcc: return "FBCC";
    case RateControl::kGcc: return "GCC";
  }
  return "?";
}

std::string to_string(NetworkType n) {
  switch (n) {
    case NetworkType::kCellular: return "cellular";
    case NetworkType::kWireline: return "wireline";
  }
  return "?";
}

namespace presets {

SessionConfig cellular_static() {
  SessionConfig config;
  config.network = NetworkType::kCellular;
  config.channel.rss_dbm = -73.0;
  config.channel.mean_cell_load = 0.15;
  config.channel.speed_mph = 0.0;
  return config;
}

SessionConfig wireline() {
  SessionConfig config;
  config.network = NetworkType::kWireline;
  // FBCC needs the modem diagnostics; over wireline the paper (and we)
  // always run GCC as the transport.
  config.rate_control = RateControl::kGcc;
  return config;
}

SessionConfig cellular_idle_cell() {
  SessionConfig config = cellular_static();
  config.channel.mean_cell_load = 0.10;
  config.channel.load_std = 0.05;
  return config;
}

SessionConfig cellular_busy_cell() {
  SessionConfig config = cellular_static();
  config.channel.mean_cell_load = 0.45;
  config.channel.load_std = 0.16;
  config.channel.load_tau_s = 2.0;
  return config;
}

SessionConfig cellular_rss(double rss_dbm) {
  SessionConfig config = cellular_static();
  config.channel.rss_dbm = rss_dbm;
  // Weekend runs at fixed locations: the cell is mostly idle and the static
  // channel barely moves (§6.2 — "as long as the RSS does not fluctuate,
  // POI360's rate control can always converge"). Competing-traffic grant
  // events are correspondingly rare.
  config.channel.mean_cell_load = 0.08;
  config.channel.load_std = 0.04;
  config.channel.fading_std = 0.15;
  config.channel.fading_tau_s = 2.5;
  config.channel.outage_per_min = 0.15;
  config.uplink.famine_mean_interval = sec(25);
  config.uplink.surge_mean_interval = sec(6);
  return config;
}

SessionConfig cellular_driving(double speed_mph) {
  SessionConfig config = cellular_static();
  config.channel.speed_mph = speed_mph;
  // The highway route enjoys less building blockage (§6.2: ~-60 dBm);
  // urban and residential routes sit at moderate signal.
  if (speed_mph >= 45.0) {
    config.channel.rss_dbm = -60.0;
  } else if (speed_mph >= 25.0) {
    config.channel.rss_dbm = -76.0;
  } else {
    config.channel.rss_dbm = -75.0;
  }
  config.channel.mean_cell_load = 0.2;
  // Handover interruptions scale with speed: more frequent cell changes and
  // longer interruptions on fast roads.
  config.channel.outage_per_min = 0.35 + speed_mph / 8.0;
  config.channel.outage_mean_duration =
      msec(400) + msec_f(speed_mph * 8.0);
  return config;
}

SessionConfig cellular_mec() {
  SessionConfig config = cellular_static();
  // Relaying at the eNodeB removes the Internet segment in both directions:
  // only the air interface and the edge relay remain.
  config.core_delay = msec(4);
  config.core_jitter = msec(1);
  config.core_loss = 0.0001;
  config.feedback_delay = msec(22);
  config.feedback_jitter = msec(5);
  return config;
}

}  // namespace presets

}  // namespace poi360::core
