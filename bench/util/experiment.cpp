#include "util/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "poi360/common/table.h"
#include "util/options.h"

namespace poi360::bench {

namespace {

// Per-bench harness state: flag values plus the wall-clock / run counters
// reported at exit. All harness output goes to stderr so bench stdout stays
// byte-identical across --jobs settings.
struct HarnessState {
  std::string bench_name = "bench";
  int jobs = 0;  // 0 = auto (POI360_JOBS, else hardware_concurrency)
  bool progress = false;
  std::string out_json;
  std::string trace_dir;
  std::chrono::steady_clock::time_point start;
  long total_runs = 0;
  long failed_runs = 0;
  bool initialized = false;
};

HarnessState& state() {
  static HarnessState s;
  return s;
}

void report_at_exit() {
  HarnessState& s = state();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    s.start)
          .count();
  const int resolved = runner::BatchRunner::resolve_jobs(s.jobs);
  std::fprintf(stderr, "[bench] %s runs=%ld failed=%ld jobs=%d wall_s=%.3f\n",
               s.bench_name.c_str(), s.total_runs, s.failed_runs, resolved,
               wall);
  if (!s.out_json.empty()) {
    std::ofstream out(s.out_json, std::ios::trunc);
    if (out) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"bench\":\"%s\",\"jobs\":%d,\"runs\":%ld,"
                    "\"failed\":%ld,\"wall_s\":%.3f}\n",
                    s.bench_name.c_str(), resolved, s.total_runs,
                    s.failed_runs, wall);
      out << buf;
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n", s.out_json.c_str());
    }
  }
}

}  // namespace

void init(int argc, char** argv) {
  HarnessState& s = state();
  s.start = std::chrono::steady_clock::now();
  if (argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    s.bench_name = slash ? slash + 1 : argv[0];
  }
  FlagParser parser;
  parser
      .on_value("--jobs", "N",
                [&s](const char* v) {
                  s.jobs = std::atoi(v);
                  return s.jobs >= 1;
                })
      .on_string("--out-json", "PATH", &s.out_json)
      .on_flag("--progress", &s.progress)
      .on_string("--trace-dir", "PATH", &s.trace_dir);
  parser.parse(argc, argv);
  if (!s.initialized) {
    s.initialized = true;
    std::atexit(report_at_exit);
  }
}

int jobs() { return runner::BatchRunner::resolve_jobs(state().jobs); }

const std::string& trace_dir() { return state().trace_dir; }

runner::BatchResult run(const runner::ExperimentSpec& spec) {
  HarnessState& s = state();
  if (!s.initialized) {
    // Bench skipped init(): still time the sweep from the first batch.
    s.start = std::chrono::steady_clock::now();
    s.initialized = true;
    std::atexit(report_at_exit);
  }
  const runner::ExperimentSpec* effective = &spec;
  runner::ExperimentSpec traced;
  if (!s.trace_dir.empty() && spec.trace_dir().empty()) {
    std::filesystem::create_directories(s.trace_dir);
    traced = spec;
    traced.trace_dir(s.trace_dir);
    effective = &traced;
  }
  runner::BatchRunner::Options options;
  options.jobs = s.jobs;
  if (s.progress) {
    options.on_progress = [](const runner::RunResult& r, int done,
                             int total) {
      std::fprintf(stderr, "[bench] %d/%d %s%s%s\n", done, total,
                   r.spec.label().c_str(), r.ok ? "" : " FAILED: ",
                   r.ok ? "" : r.error.c_str());
    };
  }
  runner::BatchResult batch = runner::BatchRunner(options).run(*effective);
  s.total_runs += static_cast<long>(batch.runs.size());
  s.failed_runs += static_cast<long>(batch.failed_count());
  for (const runner::RunResult& r : batch.runs) {
    if (!r.ok && !s.progress) {
      std::fprintf(stderr, "[bench] run %s failed: %s\n",
                   r.spec.label().c_str(), r.error.c_str());
    }
  }
  return batch;
}

std::vector<metrics::SessionMetrics> run_sessions(
    const core::SessionConfig& base, int runs, std::uint64_t seed0) {
  runner::ExperimentSpec spec(base);
  spec.repeats(runs).seed0(seed0);
  const runner::BatchResult batch = run(spec);
  std::vector<metrics::SessionMetrics> out;
  out.reserve(batch.runs.size());
  for (const runner::RunResult& r : batch.runs) {
    // Preserve the historical contract: a failed run propagates.
    if (!r.ok) {
      throw std::runtime_error("run " + r.spec.label() +
                               " failed: " + r.error);
    }
    out.push_back(r.metrics);
  }
  return out;
}

metrics::SessionMetrics run_merged(const core::SessionConfig& base, int runs,
                                   std::uint64_t seed0) {
  return metrics::merge(run_sessions(base, runs, seed0));
}

namespace {

template <typename Runs, typename Sampler>
SampleSet pooled(const Runs& runs, Sampler sampler) {
  SampleSet out;
  for (const auto& run : runs) {
    const SampleSet samples = sampler(run);
    for (double v : samples.samples()) out.add(v);
  }
  return out;
}

}  // namespace

SampleSet pooled_level_variation(
    const std::vector<metrics::SessionMetrics>& runs, SimDuration window) {
  return pooled(runs, [&](const metrics::SessionMetrics& m) {
    return m.roi_level_variation(window);
  });
}

SampleSet pooled_level_variation(
    const std::vector<const metrics::SessionMetrics*>& runs,
    SimDuration window) {
  return pooled(runs, [&](const metrics::SessionMetrics* m) {
    return m->roi_level_variation(window);
  });
}

SampleSet pooled_delays_ms(const std::vector<metrics::SessionMetrics>& runs) {
  return pooled(runs, [](const metrics::SessionMetrics& m) {
    return m.frame_delays_ms();
  });
}

SampleSet pooled_delays_ms(
    const std::vector<const metrics::SessionMetrics*>& runs) {
  return pooled(runs, [](const metrics::SessionMetrics* m) {
    return m->frame_delays_ms();
  });
}

void print_cdf(const std::string& title, const SampleSet& samples,
               const std::string& unit, int bins) {
  std::printf("%s  (n=%zu)\n", title.c_str(), samples.count());
  Table t({unit, "CDF"});
  for (const auto& [x, p] : samples.cdf_points(bins)) {
    t.add_row({fmt(x, 2), fmt(p, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
}

core::SessionConfig micro_config(core::CompressionScheme scheme,
                                 core::NetworkType network,
                                 SimDuration duration) {
  core::SessionConfig config = network == core::NetworkType::kWireline
                                   ? core::presets::wireline()
                                   : core::presets::cellular_static();
  config.compression = scheme;
  config.rate_control = core::RateControl::kGcc;
  config.duration = duration;
  return config;
}

core::SessionConfig transport_config(core::RateControl rate_control,
                                     SimDuration duration) {
  core::SessionConfig config = core::presets::cellular_static();
  config.compression = core::CompressionScheme::kPoi360;
  config.rate_control = rate_control;
  config.duration = duration;
  return config;
}

void print_mos_row(const std::string& label, const std::vector<double>& pdf) {
  std::printf("%-28s Bad=%5.1f%%  Poor=%5.1f%%  Fair=%5.1f%%  Good=%5.1f%%  "
              "Excellent=%5.1f%%\n",
              label.c_str(), pdf[0] * 100.0, pdf[1] * 100.0, pdf[2] * 100.0,
              pdf[3] * 100.0, pdf[4] * 100.0);
}

}  // namespace poi360::bench
