#pragma once

#include <algorithm>
#include <string>

namespace poi360::video {

/// Mean Opinion Score buckets (paper Table 1).
enum class Mos { kBad = 0, kPoor = 1, kFair = 2, kGood = 3, kExcellent = 4 };

/// Maps PSNR (dB) to an MOS bucket per Table 1:
///   > 37 Excellent | 31..37 Good | 25..31 Fair | 20..25 Poor | < 20 Bad.
Mos mos_from_psnr(double psnr_db);

std::string to_string(Mos mos);

/// Analytic video quality model.
///
/// We do not encode pixels; instead PSNR is modeled as a deterministic
/// function of (a) the encoder's bit budget per *effective* pixel (pixels
/// surviving spatial compression) and (b) the spatial compression level of
/// the displayed tile:
///
///   psnr(bpp, l) = clamp(enc_ref_psnr + enc_slope * log2(bpp/enc_ref_bpp),
///                        floor, ceiling)  -  downsample_db_per_octave * log2(l)
///
/// The log-linear rate-distortion curve is the standard high-rate
/// approximation; the downsampling penalty reflects the resolution loss when
/// a tile encoded at area ratio 1/l is upscaled back for display (the paper's
/// "unfold" step). Constants are calibrated so that an uncompressed 4K
/// panorama at generous bitrate sits at the ceiling (~42 dB, "Excellent") and
/// POI360's measured operating points land in the PSNR ranges the paper
/// reports (see EXPERIMENTS.md).
struct QualityModel {
  double ceiling_db = 42.0;
  double floor_db = 10.0;
  double enc_ref_psnr_db = 35.5;
  double enc_ref_bpp = 0.055;
  double enc_slope_db_per_octave = 5.5;
  double downsample_db_per_octave = 3.0;

  /// PSNR contributed by the encoder alone (no spatial compression).
  double encode_psnr(double bpp) const;

  /// PSNR of a displayed tile whose compression level is `level` (>= 1)
  /// inside a frame encoded at `bpp` bits per effective pixel.
  double tile_psnr(double bpp, double level) const;

  /// Hot-path variant of `tile_psnr` with the encoder term precomputed by
  /// the caller (it depends only on bpp, not the tile) and log2(level)
  /// memoized (CompressionMatrix caches it at freeze). Same arithmetic as
  /// `tile_psnr`, bit for bit.
  double tile_psnr_from(double encode_psnr_db, double log2_level) const {
    const double penalty = downsample_db_per_octave * log2_level;
    return std::max(floor_db, encode_psnr_db - penalty);
  }
};

class CompressionMatrix;  // compression.h
class TileGrid;           // tile_grid.h
struct TileIndex;

/// PSNR of the viewer's ROI *region* (§5: the measurement crops the ROI from
/// the frame, i.e. the HMD field of view, not a single tile).
///
/// The FOV spans roughly a 5x3-tile neighborhood on the 12x8 grid; foveation
/// weights emphasize the center. Per-tile PSNRs are combined through MSE
/// (PSNR is log-domain; averaging must happen in the error domain), so one
/// badly compressed tile inside the FOV drags the region down — which is
/// exactly what a viewer at the edge of Conduit's cropped window perceives.
double roi_region_psnr(const QualityModel& model, const TileGrid& grid,
                       const CompressionMatrix& levels, TileIndex center,
                       double bpp);

}  // namespace poi360::video
