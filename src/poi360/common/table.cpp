#include "poi360/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace poi360 {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace poi360
