file(REMOVE_RECURSE
  "libpoi360_metrics.a"
)
