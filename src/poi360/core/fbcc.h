#pragma once

#include <cstdint>
#include <deque>

#include "poi360/common/ring_buffer.h"
#include "poi360/common/stats.h"
#include "poi360/common/time.h"
#include "poi360/common/units.h"
#include "poi360/lte/diag.h"
#include "poi360/obs/trace.h"

namespace poi360::core {

/// Uplink congestion detector (paper Eq. 3).
///
/// J = 1 iff the firmware buffer level increased for K consecutive
/// diagnostic reports AND the current level exceeds Γ(t), the long-term
/// average buffer level (updated online as an EWMA).
class CongestionDetector {
 public:
  struct Config {
    int k = 10;                 // consecutive increases required
    double gamma_alpha = 0.02;  // EWMA weight for Γ(t)
    /// Eq. 3 asks for K strictly increasing reports; on real diag feeds the
    /// per-report TBS quantization makes occasional down-ticks inevitable
    /// even while the buffer is filling, so we tolerate a few, as long as
    /// the level grew over the whole K-report span.
    int allowed_decreases = 2;
  };

  CongestionDetector();
  explicit CongestionDetector(Config config);

  /// Feeds one buffer-level report; returns the congestion indicator J.
  bool on_report(std::int64_t buffer_bytes);

  /// Forgets the consecutive-increase history (e.g. across a diag gap, so
  /// pre-gap levels cannot complete a K-streak against post-gap reality).
  /// The long-term average Γ(t) is kept: it is a property of the link, not
  /// of the report stream, and re-learning it from scratch would leave
  /// Eq. 3 threshold-less for seconds.
  void reset();

  double gamma() const { return gamma_.value(); }
  bool last_signal() const { return last_signal_; }

 private:
  Config config_;
  RingBuffer<std::int64_t> history_;
  Ewma gamma_;
  bool last_signal_ = false;
};

/// Windowed uplink bandwidth estimator (paper Eq. 4/5).
///
/// R_phy = (sum of TBS over the trailing window) / window duration. When the
/// uplink is saturated (J = 1) this *is* the available bandwidth R_bw; when
/// not saturated it is only a lower bound — which is why FBCC uses it solely
/// on congestion.
class TbsWindowEstimator {
 public:
  struct Config {
    SimDuration window = msec(480);  // W = 480 subframes
  };

  TbsWindowEstimator();
  explicit TbsWindowEstimator(Config config);

  /// Feeds one report. Out-of-order and duplicate-timestamp reports are
  /// dropped: folding them in would double-count TBS bytes and corrupt the
  /// window sum (the diag feed may deliver late or repeated reports).
  void on_report(const lte::DiagReport& report);

  /// Forgets all windowed reports.
  void reset();

  /// Trailing-window PHY throughput; 0 until any report arrives.
  Bitrate rphy() const;

 private:
  Config config_;
  std::deque<lte::DiagReport> reports_;
};

/// Learns the "sweet spot" firmware buffer level B* (paper §4.3.2): high
/// enough that the proportional-fair scheduler grants the full bandwidth,
/// low enough to avoid queueing delay. The paper notes B* "can be learnt
/// from previous transmissions"; we estimate the grant-curve slope k from
/// unsaturated samples (R_phy ≈ k·B below the knee) and the saturation rate
/// from the largest sustained R_phy, giving B* = headroom · R_sat / k.
class SweetSpotEstimator {
 public:
  struct Config {
    std::int64_t prior_bytes = 9 * 1024;  // until enough samples are seen
    std::int64_t min_bytes = 2 * 1024;
    std::int64_t max_bytes = 30 * 1024;
    /// Target sits this factor above the estimated knee. Also the probe
    /// that lets the decaying-max saturation estimate ratchet up to the
    /// true capacity: pushing B slightly past the believed knee reveals
    /// whether R_phy keeps growing.
    double headroom = 1.15;
    double slope_alpha = 0.05;   // EWMA for the grant-curve slope
    double sat_decay = 0.9995;   // per-sample decay of the max-rate tracker
    int min_samples = 50;
  };

  SweetSpotEstimator();
  explicit SweetSpotEstimator(Config config);

  /// One observation of (buffer level, trailing PHY rate).
  void on_sample(std::int64_t buffer_bytes, Bitrate rphy);

  std::int64_t target_bytes() const;

 private:
  Config config_;
  Ewma slope_;          // bits/s per byte, from low-occupancy samples
  double sat_rate_ = 0.0;  // decaying max of observed R_phy
  int samples_ = 0;
};

/// Firmware-Buffer-aware Congestion Control (paper §4.3) — the sender-side
/// controller combining:
///  * video bitrate control (Eq. 6): on J = 1 clamp R_v to the windowed TBS
///    bandwidth for 2 RTTs, otherwise follow the legacy GCC rate;
///  * RTP rate control (Eq. 7): every diagnostic epoch D_p steer the pacer
///    rate so the firmware buffer converges to the sweet spot B*.
class FbccController {
 public:
  struct Config {
    CongestionDetector::Config detector{};
    TbsWindowEstimator::Config tbs{};
    SweetSpotEstimator::Config sweet_spot{};
    bool learn_sweet_spot = true;
    Bitrate min_rate = kbps(200);
    Bitrate max_rate = mbps(12);
    /// Anti-windup ceiling for Eq. 7: R_rtp <= this factor x R_v.
    double rtp_over_video_cap = 3.0;
    /// Fallback RTT before the first measurement.
    SimDuration initial_rtt = msec(120);

    // -- diag-path robustness (degraded mode) ------------------------------
    /// After this long without a credible report the controller stops
    /// trusting the sensor and falls back to pure R_gcc pacing.
    SimDuration diag_timeout = msec(250);
    /// Pacer headroom over R_gcc while degraded — the same role
    /// `SessionConfig::gcc_pacing_factor` plays for the pure-GCC transport.
    double fallback_pacing_factor = 1.15;
    /// Consecutive credible reports required before FBCC re-engages after
    /// a fallback episode (hysteresis against a flapping diag feed).
    int recovery_reports = 5;
    /// A report older than this against the local clock is not credible
    /// (late replays, timestamp counter resets after a modem crash).
    SimDuration max_report_age = msec(400);
    /// Plausibility ceilings; diag decoders emit wild values after resets.
    SimDuration max_report_interval = msec(1000);
    std::int64_t max_plausible_buffer_bytes = std::int64_t{64} << 20;
    std::int64_t max_plausible_tbs_bytes = std::int64_t{16} << 20;
  };

  explicit FbccController(Bitrate initial_rate);
  FbccController(Bitrate initial_rate, Config config);

  /// One diagnostic report from the modem (every D_p = 40 ms), received at
  /// local time `now`. Reports failing validation (negative or absurd
  /// fields, non-monotonic/stale timestamps, implausible intervals) are
  /// rejected before touching any estimator.
  void on_diag(const lte::DiagReport& report, SimTime now);
  /// Trusting shorthand: treats the report's own timestamp as the receipt
  /// time (unit tests; callers without a separate clock).
  void on_diag(const lte::DiagReport& report) { on_diag(report, report.time); }

  /// Staleness watchdog; call periodically (independently of the diag
  /// feed — a dead feed delivers no reports to piggyback on). After
  /// `diag_timeout` without a credible report, falls back to R_gcc pacing
  /// and resets the short-horizon estimators so pre-gap history cannot
  /// fire a bogus Eq. 3 signal once reports resume.
  void on_tick(SimTime now);

  /// Drops all short-horizon sensor state: congestion history, TBS window,
  /// any active Eq. 6 hold. Keeps what is long-term knowledge rather than
  /// report-stream state: the learnt sweet spot, Γ(t), R_gcc, the RTT.
  void reset();

  /// Latest R_gcc from the legacy end-to-end controller (Eq. 6 fallback).
  void on_gcc_rate(Bitrate rgcc);

  /// RTT estimate from the session's feedback loop (for the 2·RTT hold).
  void set_rtt(SimDuration rtt);

  /// R_v per Eq. 6.
  Bitrate video_rate() const { return video_rate_; }
  /// R_rtp per Eq. 7.
  Bitrate rtp_rate() const { return rtp_rate_; }
  /// Current congestion indicator J.
  bool congested() const { return congested_; }
  Bitrate rphy() const { return tbs_.rphy(); }
  std::int64_t sweet_spot_bytes() const;

  /// True while the controller is in sensor-fallback (pure GCC) mode.
  bool degraded() const { return degraded_; }
  /// Number of fallback episodes entered so far.
  std::int64_t fallback_episodes() const { return fallback_episodes_; }
  /// Reports rejected by validation so far.
  std::int64_t rejected_reports() const { return rejected_reports_; }
  /// Total time spent degraded, including the episode still open at `now`.
  SimDuration degraded_time(SimTime now) const;

  /// Control-decision tracing: J flips (with their Eq. 3/5 inputs) and
  /// degraded-mode transitions become instant events. nullptr = off.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  bool credible(const lte::DiagReport& report, SimTime now) const;
  void enter_degraded(SimTime now);
  void apply_fallback_rates();
  void refresh_video_rate(SimTime now);

  Config config_;
  CongestionDetector detector_;
  TbsWindowEstimator tbs_;
  SweetSpotEstimator sweet_spot_;

  Bitrate gcc_rate_;
  Bitrate video_rate_;
  Bitrate rtp_rate_;
  bool congested_ = false;

  SimDuration rtt_;
  SimTime hold_until_ = -1;
  Bitrate held_rate_ = 0.0;

  // Degraded-mode bookkeeping.
  SimTime last_report_time_ = -1;   // timestamp of last accepted report
  SimTime last_credible_at_ = -1;   // local receipt time of that report
  bool degraded_ = false;
  int healthy_streak_ = 0;
  SimTime degraded_since_ = 0;
  SimDuration degraded_total_ = 0;
  std::int64_t fallback_episodes_ = 0;
  std::int64_t rejected_reports_ = 0;

  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace poi360::core
