#include <gtest/gtest.h>

#include <cmath>

#include "poi360/roi/head_motion.h"
#include "poi360/roi/prediction.h"

namespace poi360::roi {
namespace {

TEST(Prediction, NoSamplesPredictsOrigin) {
  RoiPredictor p;
  const Orientation o = p.predict(sec(1));
  EXPECT_DOUBLE_EQ(o.yaw_deg, 0.0);
  EXPECT_FALSE(p.has_estimate());
}

TEST(Prediction, SingleSampleHolds) {
  RoiPredictor p;
  p.add_sample(sec(1), {30.0, 5.0});
  EXPECT_FALSE(p.has_estimate());
  const Orientation o = p.predict(sec(2));
  EXPECT_DOUBLE_EQ(o.yaw_deg, 30.0);
  EXPECT_DOUBLE_EQ(o.pitch_deg, 5.0);
}

TEST(Prediction, LinearMotionExtrapolated) {
  RoiPredictor p;
  // 20 deg/s yaw drift sampled every 100 ms.
  for (int i = 0; i <= 5; ++i) {
    p.add_sample(msec(100) * i, {2.0 * i, 0.0});
  }
  ASSERT_TRUE(p.has_estimate());
  EXPECT_NEAR(p.yaw_velocity(), 20.0, 0.5);
  const Orientation o = p.predict(msec(700));
  EXPECT_NEAR(o.yaw_deg, 14.0, 0.5);
}

TEST(Prediction, StationaryGazePredictsZeroVelocity) {
  RoiPredictor p;
  for (int i = 0; i <= 10; ++i) {
    p.add_sample(msec(50) * i, {42.0, -7.0});
  }
  EXPECT_NEAR(p.yaw_velocity(), 0.0, 1e-9);
  const Orientation o = p.predict(sec(5));
  EXPECT_NEAR(o.yaw_deg, 42.0, 1e-9);
  EXPECT_NEAR(o.pitch_deg, -7.0, 1e-9);
}

TEST(Prediction, CrossesYawWrapCorrectly) {
  RoiPredictor p;
  // Moving +30 deg/s through the ±180° seam: 170, 173, 176, 179, -178...
  double yaw = 170.0;
  for (int i = 0; i <= 6; ++i) {
    p.add_sample(msec(100) * i, {wrap_yaw(yaw), 0.0});
    yaw += 3.0;
  }
  EXPECT_NEAR(p.yaw_velocity(), 30.0, 1.0);
  const Orientation o = p.predict(msec(800));
  // Sample at 600 ms was 188 -> predict 188 + 0.2 s * 30 = 194 => -166.
  EXPECT_NEAR(o.yaw_deg, -166.0, 1.5);
}

TEST(Prediction, VelocityClamped) {
  RoiPredictor::Config config;
  config.max_speed_deg_s = 50.0;
  RoiPredictor p(config);
  for (int i = 0; i <= 5; ++i) {
    p.add_sample(msec(10) * i, {wrap_yaw(5.0 * i), 0.0});  // 500 deg/s
  }
  EXPECT_LE(std::fabs(p.yaw_velocity()), 50.0 + 1e-9);
}

TEST(Prediction, PitchClampedToValidRange) {
  RoiPredictor p;
  for (int i = 0; i <= 5; ++i) {
    p.add_sample(msec(100) * i, {0.0, 15.0 * i});  // rising fast
  }
  const Orientation o = p.predict(sec(10));
  EXPECT_LE(o.pitch_deg, 90.0);
}

TEST(Prediction, OldSamplesEvicted) {
  RoiPredictor::Config config;
  config.fit_window = msec(200);
  RoiPredictor p(config);
  // Old fast motion followed by a long still phase: the fit must reflect
  // only the still samples.
  p.add_sample(msec(0), {0.0, 0.0});
  p.add_sample(msec(50), {20.0, 0.0});
  for (int i = 0; i <= 10; ++i) {
    p.add_sample(sec(1) + msec(50) * i, {30.0, 0.0});
  }
  EXPECT_NEAR(p.yaw_velocity(), 0.0, 1e-6);
}

TEST(Prediction, ShortHorizonTracksRealMotionBetterThanStale) {
  // Property at the heart of §8: against the stochastic motion model, a
  // 100 ms prediction beats using a 100 ms old sample, at direction changes
  // and everywhere else on average.
  StochasticHeadMotion motion({}, 99);
  RoiPredictor p;
  double err_pred = 0.0, err_stale = 0.0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = msec(28) * i;
    p.add_sample(t, motion.orientation_at(t));
    if (i < 20) continue;
    const SimTime target = t + msec(100);
    const Orientation truth = motion.orientation_at(target);
    err_pred += angular_distance(p.predict(target), truth);
    err_stale += angular_distance(motion.orientation_at(t), truth);
    ++n;
  }
  EXPECT_LT(err_pred / n, err_stale / n);
}

TEST(Prediction, LongHorizonDegrades) {
  // And the flip side: at a 1 s horizon the constant-velocity model
  // overshoots every direction change, ending up *worse* than no motion
  // assumption at all.
  StochasticHeadMotion motion({}, 42);
  RoiPredictor p;
  double err_pred = 0.0, err_hold = 0.0;
  int n = 0;
  for (int i = 0; i < 4000; ++i) {
    const SimTime t = msec(28) * i;
    p.add_sample(t, motion.orientation_at(t));
    if (i < 40) continue;
    const SimTime target = t + sec(1);
    const Orientation truth = motion.orientation_at(target);
    err_pred += angular_distance(p.predict(target), truth);
    err_hold += angular_distance(motion.orientation_at(t), truth);
    ++n;
  }
  EXPECT_GT(err_pred / n, 0.9 * err_hold / n);
}

}  // namespace
}  // namespace poi360::roi
